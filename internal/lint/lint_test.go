package lint_test

import (
	"path/filepath"
	"testing"

	"disco/internal/lint"
	"disco/internal/lint/analysistest"
)

// Each analyzer runs over its fixture package — positive fixtures per bug
// class, negative fixtures for the sanctioned shapes, and the justified
// allow-comment escapes — through the same RunPackage pipeline that
// cmd/disco-lint and CI use. The fixture import paths impersonate the
// packages the analyzers are scoped to, so the package filters are
// exercised too.

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestEOFIdentity(t *testing.T) {
	analysistest.Run(t, fixture("eofidentity"), "disco/internal/physical", lint.EOFIdentity)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, fixture("ctxflow"), "disco/internal/core", lint.CtxFlow)
}

func TestGoTrack(t *testing.T) {
	analysistest.Run(t, fixture("gotrack"), "disco/internal/wire", lint.GoTrack)
}

func TestLockSend(t *testing.T) {
	analysistest.Run(t, fixture("locksend"), "disco/internal/core", lint.LockSend)
}

func TestTraceExplain(t *testing.T) {
	analysistest.Run(t, fixture("traceexplain"), "disco/internal/core", lint.TraceExplain)
}

// TestScoping pins the package filters: an analyzer scoped away from a
// package must not fire there, and eofidentity applies everywhere.
func TestScoping(t *testing.T) {
	cases := []struct {
		a    *lint.Analyzer
		path string
		want bool
	}{
		{lint.EOFIdentity, "disco/internal/oql", true},
		{lint.CtxFlow, "disco/internal/core", true},
		{lint.CtxFlow, "disco/internal/harness", true},
		{lint.CtxFlow, "disco/internal/odl", false},
		{lint.GoTrack, "disco/internal/wire", true},
		{lint.GoTrack, "disco/internal/harness", false},
		{lint.LockSend, "disco/internal/source", true},
		{lint.LockSend, "disco/internal/types", false},
		{lint.TraceExplain, "disco/internal/core", true},
		{lint.TraceExplain, "disco/internal/wire", false},
	}
	for _, c := range cases {
		got := c.a.Match == nil || c.a.Match(c.path)
		if got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
}

// TestByName pins the registry: every analyzer resolves by name, and the
// suite has the five invariants the PR series minted.
func TestByName(t *testing.T) {
	want := []string{"eofidentity", "ctxflow", "gotrack", "locksend", "traceexplain"}
	all := lint.Analyzers()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("analyzer %d is %q, want %q", i, all[i].Name, name)
		}
		if lint.ByName(name) != all[i] {
			t.Errorf("ByName(%q) did not resolve", name)
		}
	}
	if lint.ByName("nope") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}
