// Fixture: blocking channel work under a mutex (the probe-slot/stall
// class). While a Lock/RLock is lexically held, sends, receives, and
// selects without a default can block every goroutine contending on the
// lock.
package fixture

import "sync"

type pool struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
}

// sendUnderLock is the bug shape.
func (p *pool) sendUnderLock(v int) {
	p.mu.Lock()
	p.ch <- v // want `channel send while p.mu is held`
	p.mu.Unlock()
}

// sendUnderDeferredUnlock: a deferred Unlock holds the lock to function
// end, so the send is still under it.
func (p *pool) sendUnderDeferredUnlock(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ch <- v // want `channel send while p.mu is held`
}

// receiveUnderRLock: receives block too.
func (p *pool) receiveUnderRLock() int {
	p.rw.RLock()
	defer p.rw.RUnlock()
	return <-p.ch // want `channel receive while p.rw is held`
}

// selectUnderLock: a select without a default blocks until a case fires.
func (p *pool) selectUnderLock(stop chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `select without a default case while p.mu is held`
	case v := <-p.ch:
		_ = v
	case <-stop:
	}
}

// sendAfterUnlock is the fixed shape: the channel work moved off the
// critical section.
func (p *pool) sendAfterUnlock(v int) {
	p.mu.Lock()
	p.mu.Unlock()
	p.ch <- v
}

// nonBlockingUnderLock: a select with a default cannot block — this is
// the sanctioned try-send idiom.
func (p *pool) nonBlockingUnderLock(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- v:
	default:
	}
}

// condUnderLock: sync.Cond is the sanctioned way to wait under a mutex.
func (p *pool) condUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cond.Wait()
	p.cond.Broadcast()
}

// branchScoped: a lock taken inside a branch does not poison the
// statements after the branch.
func (p *pool) branchScoped(locked bool, v int) {
	if locked {
		p.mu.Lock()
		p.mu.Unlock()
	}
	p.ch <- v
}

// literalUnderLock: a function literal defined under the lock runs on its
// own goroutine (or later) and starts lock-free.
func (p *pool) literalUnderLock() func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	return func() {
		p.ch <- 1
	}
}

// allowed: a send proven non-blocking (buffered, sole sender) carries the
// justified escape.
func (p *pool) allowed(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:allow locksend buffered result channel with exactly one send; cannot block
	p.ch <- v
}
