// Fixture: goroutine tracking (the PR 5 scatter-gather leak and PR 6
// untracked-probe class). A go statement must be lexically tied to a
// shutdown mechanism in its enclosing function.
package fixture

import (
	"context"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func (s *server) loop()    {}
func (s *server) work()    {}
func (s *server) observe() {}

// leakLiteral is the bug shape: a fire-and-forget literal nothing owns.
func (s *server) leakLiteral() {
	go func() { // want `nothing owns its shutdown`
		s.work()
	}()
}

// leakNamed is the named-call variant: no WaitGroup Add in sight.
func (s *server) leakNamed() {
	go s.loop() // want `nothing owns its shutdown`
}

// trackedWaitGroup: the classic Add/Done pair.
func (s *server) trackedWaitGroup() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.work()
	}()
}

// trackedNamed: Add before a named-call goroutine.
func (s *server) trackedNamed() {
	s.wg.Add(1)
	go s.loop()
}

// trackedCloser: the goroutine closes a channel someone drains.
func (s *server) trackedCloser(ch chan int) {
	go func() {
		s.work()
		close(ch)
	}()
}

// trackedReceiver: the goroutine parks on a receive, so a close-signal
// (or the send it waits for) unparks it.
func (s *server) trackedReceiver(stop chan struct{}) {
	go func() {
		select {
		case <-s.done:
			s.work()
		case <-stop:
		}
	}()
}

// trackedCtx: the goroutine parks on ctx.Done().
func (s *server) trackedCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
		s.work()
	}()
}

// trackedResult: completion signal on a channel the enclosing function
// made — the maker owns the drain (the physical.Exec shape).
func (s *server) trackedResult() chan int {
	res := make(chan int, 1)
	go func() {
		s.work()
		res <- 1
	}()
	return res
}

// trackedResultOuter: the result channel is made two function layers up
// (the raceArms shape: a launch closure inside the racing function).
func (s *server) trackedResultOuter() chan int {
	res := make(chan int, 8)
	launch := func() {
		go func() {
			res <- 1
		}()
	}
	launch()
	return res
}

// untrackedSend: a send on a channel made elsewhere proves nothing — the
// maker may be long gone.
func (s *server) untrackedSend(res chan int) {
	go func() { // want `nothing owns its shutdown`
		res <- 1
	}()
}

// allowed is a deliberately detached goroutine with a justified escape
// (the fire-and-forget cancel-frame shape).
func (s *server) allowed() {
	//lint:allow gotrack fire-and-forget by design; bounded by the conn write deadline
	go s.observe()
}
