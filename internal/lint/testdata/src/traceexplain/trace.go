// Fixture: Trace/renderer drift (the check PRs 7 and 8 did by hand).
// Every exported Trace field must be rendered by the explain surface.
package fixture

import (
	"fmt"
	"strings"
	"time"
)

// Trace mirrors core.Trace's shape: stage timings plus degradation
// counters.
type Trace struct {
	Parse   time.Duration
	Execute time.Duration
	// Shed is rendered below.
	Shed int64
	// Dropped is collected but never rendered — the drift bug.
	Dropped int64 // want `Trace.Dropped is collected but never rendered`
	// admittedAt is unexported bookkeeping; the invariant covers only the
	// exported surface.
	admittedAt time.Time
	// DebugSeq is deliberately internal and carries the escape.
	//lint:allow traceexplain internal sequence number for test ordering; not a degradation signal
	DebugSeq int64
}

// String is the explain surface.
func (tr *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "parse    %v\n", tr.Parse)
	fmt.Fprintf(&b, "execute  %v\n", tr.Execute)
	if tr.Shed > 0 {
		b.WriteString("shed by admission gate (overload)\n")
	}
	return b.String()
}
