// Fixture: detached contexts in serving-path code (the PR 8 class: work
// that keeps burning source capacity after the caller walked away).
package fixture

import (
	"context"
	"time"
)

type client struct{ timeout time.Duration }

func (c *client) ping(ctx context.Context) error { return ctx.Err() }

// detached is the bug shape: the caller's deadline and cancellation are
// thrown away, so the propagated wire budget never sees them.
func detached(c *client) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout) // want `thread the caller's context`
	defer cancel()
	return c.ping(ctx)
}

// todoDetached: context.TODO is the same detachment with a softer name.
func todoDetached(c *client) error {
	return c.ping(context.TODO()) // want `thread the caller's context`
}

// threaded is the fixed shape: the caller's ctx bounds the call.
func threaded(ctx context.Context, c *client) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	return c.ping(ctx)
}

// lifetimeRoot is a deliberate detachment — a server's lifetime root has
// no caller to inherit from — and carries the justified escape.
func lifetimeRoot(c *client) (context.Context, context.CancelFunc) {
	//lint:allow ctxflow server lifetime root: there is no caller context to inherit
	return context.WithCancel(context.Background())
}
