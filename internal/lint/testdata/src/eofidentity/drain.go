// Fixture: the PR 9 silent-truncation regression, reproduced verbatim.
// Before the fix, physical.Drain detected end-of-stream with
// errors.Is(err, io.EOF); a transport error wrapping io.EOF (a peer
// hanging up mid-answer) matched it, and the fan-out silently truncated
// into a smaller "complete" answer.
package fixture

import (
	"context"
	"errors"
	"io"
)

type operator interface {
	Open(ctx context.Context) error
	NextBatch(b *batch) error
	Close() error
}

type batch struct{}

func (b *batch) values() []any { return nil }

// drainBuggy is the pre-fix PR 9 code path.
func drainBuggy(ctx context.Context, op operator) ([]any, error) {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	b := &batch{}
	var out []any
	for {
		err := op.NextBatch(b)
		if errors.Is(err, io.EOF) { // want `compare the end-of-stream sentinel by identity`
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b.values()...)
	}
}

// drainFixed is the post-fix code path: identity comparison cannot match
// a wrapped transport EOF.
func drainFixed(ctx context.Context, op operator) ([]any, error) {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	b := &batch{}
	var out []any
	for {
		err := op.NextBatch(b)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b.values()...)
	}
}

// classify shows the other errors.Is uses the analyzer must leave alone:
// non-EOF targets, and EOF identity comparisons.
func classify(err error) bool {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}
