// Fixture: the allow-comment escape for genuine error-classification
// sites (the isMidAnswerDropErr shape from internal/core/runtime.go),
// and the malformed allow comments that must themselves be findings.
package fixture

import (
	"errors"
	"io"
)

// isMidAnswerDrop asks whether the transport died in an EOF-shaped way —
// exactly the question errors.Is exists to answer. The justified allow
// comment suppresses the finding.
func isMidAnswerDrop(err error) bool {
	//lint:allow eofidentity classification site: asks whether a transport error is EOF-shaped, not whether a stream ended
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	return false
}

// suppressedSameLine proves the same-line escape form.
func suppressedSameLine(err error) bool {
	return errors.Is(err, io.EOF) //lint:allow eofidentity classification site, same-line form
}

// badAllows proves that malformed allow comments cannot silently disarm
// the invariant: a missing justification and an unknown analyzer name are
// both findings, and the errors.Is they fail to cover still fires.
func badAllows(err error) bool {
	//lint:allow eofidentity // want `needs a justification`
	if errors.Is(err, io.EOF) { // want `compare the end-of-stream sentinel by identity`
		return true
	}
	//lint:allow eofidentityy typo in the analyzer name // want `unknown analyzer`
	return errors.Is(err, io.EOF) // want `compare the end-of-stream sentinel by identity`
}
