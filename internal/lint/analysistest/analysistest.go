// Package analysistest runs lint analyzers over fixture packages and
// checks their findings against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library alone.
//
// A fixture is a directory of Go files under testdata/src/<name>/. Lines
// expected to produce a finding carry a want comment whose Go-quoted
// regular expression must match the finding's message:
//
//	if errors.Is(err, io.EOF) { // want `compare the end-of-stream sentinel by identity`
//
// A line with a want comment but no finding, or a finding on a line with
// no want comment, fails the test. Fixtures run through lint.RunPackage —
// the same pipeline cmd/disco-lint and CI run — so allow-comment
// filtering is exercised too: negative fixtures prove the escape hatch
// works, and malformed allow comments surface as "allow" findings that
// can themselves be matched with want comments.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"disco/internal/lint"
)

// wantRe matches "// want" comments; the expectation is the
// backquoted regular expression.
var wantRe = regexp.MustCompile("//\\s*want\\s+`([^`]*)`")

// Run analyzes the fixture package in dir as though it had the given
// import path (so the analyzer's package filter applies exactly as in
// production) and reports every mismatch between findings and want
// comments as test errors.
func Run(t *testing.T, dir, importPath string, a *lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []*ast.File
	wants := map[lineKey]*wantExpectation{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants[lineKey{file: path, line: i + 1}] = &wantExpectation{re: re}
			}
		}
	}
	if a.Match != nil && !a.Match(importPath) {
		t.Fatalf("analyzer %s does not match import path %s; fixture would be vacuous", a.Name, importPath)
	}
	diags, err := lint.RunPackage(fset, files, importPath, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		w := wants[lineKey{file: d.Pos.Filename, line: d.Pos.Line}]
		switch {
		case w == nil:
			t.Errorf("%s: unexpected finding: %s", a.Name, d)
		case !w.re.MatchString(d.Message):
			t.Errorf("%s: finding at %s does not match want %q: %s", a.Name, d.Pos, w.re, d.Message)
		default:
			w.matched = true
		}
	}
	for k, w := range wants {
		if !w.matched {
			t.Errorf("%s: no finding at %s:%d matching %q", a.Name, k.file, k.line, w.re)
		}
	}
}

type lineKey struct {
	file string
	line int
}

type wantExpectation struct {
	re      *regexp.Regexp
	matched bool
}
