package lint

import (
	"go/ast"
)

// CtxFlow guards end-to-end cancellation (PR 8): a context.Background()
// or context.TODO() in a serving-path package detaches everything beneath
// it from the caller's deadline and cancellation — the work keeps burning
// source capacity after the caller walked away, and the propagated-budget
// wire protocol never sees the real deadline. Request paths must thread
// the caller's ctx. Deliberate detachments exist — a server's lifetime
// root, a background health ping with no caller, a public non-context API
// shim — and each carries an allow comment explaining why it is one.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/context.TODO() in serving-path packages: request paths must thread the caller's " +
		"context; annotate deliberate detachments with //lint:allow ctxflow <why>",
	Match: matchPrefixes(
		"disco/internal/core",
		"disco/internal/wire",
		"disco/internal/physical",
		"disco/internal/source",
		"disco/internal/harness",
	),
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			for _, name := range [...]string{"Background", "TODO"} {
				if isPkgCall(call.Fun, "context", name) {
					pass.Reportf(call.Pos(),
						"context.%s() detaches this call from the caller's deadline and cancellation — abandoned work "+
							"keeps running and the wire protocol's propagated budget is lost; thread the caller's "+
							"context, or mark a deliberate detachment with //lint:allow ctxflow <why>", name)
				}
			}
			return true
		})
	}
	return nil
}
