package lint

import (
	"go/ast"
)

// EOFIdentity mechanizes the PR 9 silent-truncation class. The physical
// layer's batch drains used errors.Is(err, io.EOF) to detect end of
// stream; a transport failure that *wraps* io.EOF (a peer hanging up
// mid-answer surfaces as an error chain ending in EOF) matched too, so a
// dying shard read as a clean, shorter stream and fan-outs silently
// truncated into smaller "complete" answers. End-of-stream is a sentinel
// handed back by our own operators, never wrapped, so it must be compared
// by identity: err == io.EOF. Genuine error-classification sites — code
// asking "did the transport die in an EOF-shaped way?", like
// isMidAnswerDropErr in internal/core/runtime.go — are exactly the places
// errors.Is is correct, and carry an allow comment saying so.
var EOFIdentity = &Analyzer{
	Name: "eofidentity",
	Doc: "flags errors.Is(err, io.EOF) end-of-stream checks: wrapped transport EOFs match and silently truncate streams; " +
		"compare by identity (err == io.EOF), or annotate a genuine classification site with //lint:allow eofidentity <why>",
	Run: runEOFIdentity,
}

func runEOFIdentity(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			if !isPkgCall(call.Fun, "errors", "Is") {
				return true
			}
			if sel, ok := call.Args[1].(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "io" && sel.Sel.Name == "EOF" {
					pass.Reportf(call.Pos(),
						"errors.Is(err, io.EOF) also matches transport errors that wrap io.EOF, turning a mid-answer "+
							"disconnect into a clean end-of-stream (the PR 9 silent-truncation bug); compare the "+
							"end-of-stream sentinel by identity (err == io.EOF), or mark a genuine error-classification "+
							"site with //lint:allow eofidentity <why>")
				}
			}
			return true
		})
	}
	return nil
}

// isPkgCall reports whether fun is the selector pkg.name (a call into a
// package by its conventional import name — syntactic, so a renamed
// import sidesteps it; the codebase does not rename these).
func isPkgCall(fun ast.Expr, pkg, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}
