package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// GoTrack mechanizes the goroutine-leak class: PR 5's scatter-gather
// branches blocked forever on a merge channel after a sibling's Open
// failed, and PR 6's breaker probes dialed through client pools that
// Close had already released — both goroutines nothing owned. Every go
// statement in the runtime packages must be lexically tied to a shutdown
// mechanism visible in the enclosing function:
//
//   - the goroutine body calls Done/Wait on something (WaitGroup
//     accounting, or parking on a ctx.Done()),
//   - the body closes a channel or blocks on a receive (a close-signal
//     unparks it),
//   - the body sends its result on a channel made by an enclosing
//     function (completion-signal pattern: the maker owns the drain), or
//   - a named-function goroutine (go s.loop()) is preceded by a
//     WaitGroup Add in the enclosing function.
//
// The check is lexical by design: tracking that only a reviewer can see
// is tracking the next refactor deletes. A goroutine whose lifecycle is
// genuinely owned elsewhere carries an allow comment naming the owner.
var GoTrack = &Analyzer{
	Name: "gotrack",
	Doc: "flags go statements not lexically tied to a WaitGroup Add/Done pair, a close-signal channel, or a context " +
		"cancel in the enclosing function; annotate deliberately detached goroutines with //lint:allow gotrack <owner>",
	Match: matchPrefixes(
		"disco/internal/core",
		"disco/internal/physical",
		"disco/internal/wire",
	),
	Run: runGoTrack,
}

func runGoTrack(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node // enclosing FuncDecl/FuncLit chain
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case nil:
				return false
			case *ast.FuncDecl, *ast.FuncLit:
				stack = append(stack, x)
				// Pop on post-order visit: Inspect signals it with nil,
				// but we need per-node pops, so walk children manually.
				defer func() { stack = stack[:len(stack)-1] }()
				for _, c := range childrenOf(x) {
					runGoTrackWalk(pass, c, &stack)
				}
				return false
			case *ast.GoStmt:
				checkGoStmt(pass, x, stack)
			}
			return true
		})
	}
	return nil
}

// runGoTrackWalk continues the traversal below a function node with the
// stack snapshot live (defer-based popping needs explicit recursion).
func runGoTrackWalk(pass *Pass, n ast.Node, stack *[]ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case nil:
			return false
		case *ast.FuncLit:
			*stack = append(*stack, x)
			for _, c := range childrenOf(x) {
				runGoTrackWalk(pass, c, stack)
			}
			*stack = (*stack)[:len(*stack)-1]
			return false
		case *ast.GoStmt:
			checkGoStmt(pass, x, *stack)
		}
		return true
	})
}

func childrenOf(fn ast.Node) []ast.Node {
	switch x := fn.(type) {
	case *ast.FuncDecl:
		if x.Body != nil {
			return []ast.Node{x.Body}
		}
	case *ast.FuncLit:
		return []ast.Node{x.Body}
	}
	return nil
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, stack []ast.Node) {
	if len(stack) == 0 {
		return // go at top level cannot happen in valid Go
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if trackedGoBody(lit.Body, stack) {
			return
		}
	} else if addBefore(stack, g.Pos(), pass) {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine is not lexically tied to a WaitGroup Add/Done pair, a close-signal channel, or a context cancel "+
			"in the enclosing function — nothing owns its shutdown (the PR 5 scatter-gather leak / PR 6 untracked-probe "+
			"class); tie it to its owner's lifecycle, or mark a deliberately detached goroutine with //lint:allow gotrack <owner>")
}

// trackedGoBody reports whether a go func literal's body carries a
// visible shutdown tie.
func trackedGoBody(body *ast.BlockStmt, stack []ast.Node) bool {
	made := madeChans(stack)
	tracked := false
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if _, ok := selCall(x, "Done", "Wait"); ok {
				tracked = true // WaitGroup accounting, or parking on ctx.Done()
			}
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				tracked = true // closer goroutine: someone blocks on this signal
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				tracked = true // blocked on a channel: a close/send unparks it
			}
		case *ast.SendStmt:
			if ch := exprString(x.Chan); ch != "" && made[ch] {
				tracked = true // completion signal on a channel the maker drains
			}
		}
		return true
	})
	return tracked
}

// addBefore reports whether any enclosing function contains a WaitGroup
// Add call lexically before pos (the wg.Add(1); go s.loop() idiom). What
// makes an Add receiver a WaitGroup rather than an atomic counter —
// atomics spell Add too — is a Done or Wait on the same group somewhere
// in the package: accounting nobody ever drains is not tracking. Groups
// are matched by the spine's final component ("connWG" for both
// c.connWG.Add and cc.c.connWG.Done), since different methods reach the
// same field through different receivers.
func addBefore(stack []ast.Node, pos token.Pos, pass *Pass) bool {
	found := false
	drained := drainedSpines(pass)
	for _, fn := range stack {
		ast.Inspect(fn, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && call.Pos() < pos {
				if recv, ok := selCall(call, "Add"); ok && drained[lastComponent(recv)] {
					found = true
				}
			}
			return true
		})
	}
	return found
}

// drainedSpines collects the final spine component of every Done/Wait
// call in the package ("wg" for s.wg.Done()).
func drainedSpines(pass *Pass) map[string]bool {
	if pass.drained != nil {
		return pass.drained
	}
	drained := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if recv, ok := selCall(call, "Done", "Wait"); ok && recv != "" {
					drained[lastComponent(recv)] = true
				}
			}
			return true
		})
	}
	pass.drained = drained
	return drained
}

func lastComponent(spine string) string {
	if i := strings.LastIndexByte(spine, '.'); i >= 0 {
		return spine[i+1:]
	}
	return spine
}

// madeChans collects the spines of channels created by make in any
// enclosing function (ch := make(chan T), s.resCh = make(chan T, 1)).
func madeChans(stack []ast.Node) map[string]bool {
	made := map[string]bool{}
	for _, fn := range stack {
		ast.Inspect(fn, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
					continue
				}
				if _, ok := call.Args[0].(*ast.ChanType); !ok {
					continue
				}
				if s := exprString(as.Lhs[i]); s != "" {
					made[s] = true
				}
			}
			return true
		})
	}
	return made
}
