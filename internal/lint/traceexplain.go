package lint

import (
	"go/ast"
)

// TraceExplain mechanizes the drift check PRs 7 and 8 did by hand: every
// degradation signal added to core.Trace (admission waits, sheds, hedges,
// retries, cancels, shard reads) must also be rendered by the trace's
// explain surface — (*Trace).String and the package's Explain functions —
// or operators debugging a slow query simply cannot see it. A counter
// that is collected but never rendered is drift: the field exists, tests
// pass, and the one person who needs it at 3am reads an explain output
// that silently omits it.
var TraceExplain = &Analyzer{
	Name: "traceexplain",
	Doc: "flags exported core.Trace fields that the explain surface ((*Trace).String / Explain) never renders; " +
		"render the field, or annotate intentionally internal ones with //lint:allow traceexplain <why>",
	Match: matchPrefixes("disco/internal/core"),
	Run:   runTraceExplain,
}

func runTraceExplain(pass *Pass) error {
	type field struct {
		name string
		pos  ast.Node
	}
	var fields []field
	rendered := map[string]bool{}
	foundRenderer := false

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.TypeSpec:
				st, ok := x.Type.(*ast.StructType)
				if !ok || x.Name.Name != "Trace" {
					return true
				}
				for _, fl := range st.Fields.List {
					for _, name := range fl.Names {
						if name.IsExported() {
							fields = append(fields, field{name: name.Name, pos: name})
						}
					}
				}
			case *ast.FuncDecl:
				if x.Body == nil {
					return true
				}
				if !isTraceRenderer(x) {
					return true
				}
				foundRenderer = true
				ast.Inspect(x.Body, func(n ast.Node) bool {
					if sel, ok := n.(*ast.SelectorExpr); ok {
						rendered[sel.Sel.Name] = true
					}
					return true
				})
				return false
			}
			return true
		})
	}

	if len(fields) == 0 {
		return nil
	}
	if !foundRenderer {
		pass.Reportf(fields[0].pos.Pos(),
			"Trace has exported fields but no renderer ((*Trace).String or an Explain function) in the package")
		return nil
	}
	for _, fl := range fields {
		if !rendered[fl.name] {
			pass.Reportf(fl.pos.Pos(),
				"Trace.%s is collected but never rendered by the explain surface ((*Trace).String / Explain) — a "+
					"degradation signal nobody can see; render it, or mark an intentionally internal field with "+
					"//lint:allow traceexplain <why>", fl.name)
		}
	}
	return nil
}

// isTraceRenderer reports whether fn is part of the trace's explain
// surface: a method named String or Explain on Trace/*Trace, or any
// function named Explain.
func isTraceRenderer(fn *ast.FuncDecl) bool {
	if fn.Name.Name == "Explain" {
		return true
	}
	if fn.Name.Name != "String" || fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Trace"
}
