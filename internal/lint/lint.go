// Package lint implements disco's project-specific static analyzers: the
// invariant suite that mechanizes the bug classes the seeded chaos soaks
// kept rediscovering (silent stream truncation, detached contexts,
// untracked goroutines, blocking channel work under a mutex, and
// Trace/renderer drift). Each analyzer is documented with the historical
// bug that motivated it; the suite runs over ./... via cmd/disco-lint and
// gates `make lint` / `make check` and CI.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, analysistest-style fixtures) without the
// dependency: the module is deliberately dependency-free, so the suite is
// built on the standard library's go/ast and go/parser alone and analyzers
// port to the upstream driver mechanically if the dependency ever lands.
// Analysis is syntactic — no type checking — which is exactly enough for
// the invariants here (they are all about lexical shape) and keeps a full
// ./... run in the tens of milliseconds.
//
// # Suppressing a finding
//
// A finding that is a genuine, deliberate exception is suppressed in
// place, never centrally, with a justified allow comment on the flagged
// line or the line above it:
//
//	//lint:allow <analyzer> <why this site is a legitimate exception>
//
// The justification is mandatory: an allow comment without one is itself
// a finding. Unknown analyzer names in allow comments are findings too,
// so a typo cannot silently disarm the escape.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position and a message, tagged with the
// analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package's syntax through one analyzer, mirroring
// analysis.Pass. Files holds the package's non-test files only: every
// invariant in the suite guards production code paths, and test files
// routinely (and legitimately) detach contexts, fire unsupervised
// goroutines, and classify errors.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path of the package under analysis

	diags   []Diagnostic
	drained map[string]bool // gotrack's per-package Done/Wait spine cache
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant check, mirroring analysis.Analyzer plus a
// package filter: most of the suite's invariants are scoped to the
// serving-path packages they were minted in.
type Analyzer struct {
	Name string
	Doc  string
	// Match reports whether the analyzer applies to a package import
	// path. A nil Match applies everywhere.
	Match func(path string) bool
	Run   func(*Pass) error
}

// matchPrefixes builds a Match function accepting any package whose import
// path equals or descends from one of the given paths.
func matchPrefixes(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, pre := range paths {
			if p == pre || strings.HasPrefix(p, pre+"/") {
				return true
			}
		}
		return false
	}
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		EOFIdentity,
		CtxFlow,
		GoTrack,
		LockSend,
		TraceExplain,
	}
}

// ByName resolves one analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage runs every applicable analyzer over one parsed package and
// returns the findings that survive allow-comment filtering, sorted by
// position. Files must have been parsed with comments. This is the single
// entry point shared by cmd/disco-lint and the analysistest fixture
// runner, so fixtures exercise exactly the pipeline the CI gate runs.
func RunPackage(fset *token.FileSet, files []*ast.File, path string, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows, diags := collectAllows(fset, files, analyzers)
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(path) {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Path: path}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if allows[allowKey{file: d.Pos.Filename, line: d.Pos.Line, analyzer: d.Analyzer}] ||
				allows[allowKey{file: d.Pos.Filename, line: d.Pos.Line - 1, analyzer: d.Analyzer}] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowKey addresses one allow comment's reach: findings by one analyzer
// on the comment's own line, or the line directly below it.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

const allowPrefix = "lint:allow"

// collectAllows indexes every //lint:allow comment and validates its
// shape: the analyzer must exist and the justification must be non-empty.
// Malformed allow comments are returned as findings so a typo cannot
// silently disarm an invariant.
func collectAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (map[allowKey]bool, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := map[allowKey]bool{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				// A nested comment marker ends the allow text (fixtures put
				// // want expectations on the same line).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				name, why, _ := strings.Cut(rest, " ")
				switch {
				case !known[name]:
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("lint:allow names unknown analyzer %q", name)})
				case strings.TrimSpace(why) == "":
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("lint:allow %s needs a justification: //lint:allow %s <why this site is a legitimate exception>", name, name)})
				default:
					allows[allowKey{file: pos.Filename, line: pos.Line, analyzer: name}] = true
				}
			}
		}
	}
	return allows, bad
}
