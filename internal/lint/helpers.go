package lint

import (
	"go/ast"
)

// exprString renders the identifier/selector spine of an expression
// ("m.mu", "c.cond.L") for matching receivers and channels across
// statements. Expressions with no stable spine render as "".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	}
	return ""
}

// selCall unpacks a method-call expression into its receiver spine and
// method name ("m.mu", "Lock"); ok is false for anything else.
func selCall(call *ast.CallExpr, names ...string) (recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return exprString(sel.X), true
		}
	}
	return "", false
}

// inspectSkipFuncLit walks n calling f on every node, but does not
// descend into function literals: their bodies execute on a different
// goroutine (or later), so lexical state like "lock held" or "go body"
// must not leak across the boundary.
func inspectSkipFuncLit(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return f(m)
	})
}
