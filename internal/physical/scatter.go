package physical

import (
	"context"
	"errors"
	"io"
	"sync"

	"disco/internal/types"
)

// ScatterGather executes the branches of a partition fan-out concurrently
// and merges their streams in arrival order — the physical operator behind
// a parallel union over the shards of a horizontally partitioned extent.
//
// The merge is batch-at-a-time: branches hand whole batches (up to
// types.BatchSize values) over the merge channel, so the per-tuple channel
// operation of a tuple-at-a-time merge becomes one channel operation per
// batch. Ownership of a batch transfers with the send; the consumer
// recycles drained batches through a free list, so a steady-state fan-out
// circulates a fixed set of buffers instead of allocating per send.
//
// Semantics:
//   - every branch runs in its own goroutine, gated by a semaphore of
//     MaxParallel slots (0 = unbounded), so a thousand-shard extent cannot
//     stampede its sources;
//   - values stream to the consumer as shards produce them (bag semantics
//     make the arrival-order merge sound);
//   - a failing shard does not abort the others: all branches run to
//     completion and the first error surfaces only after the surviving
//     shards have been drained, which is what lets partial evaluation keep
//     the answered shards' data and leave only the missing partitions in
//     the residual query;
//   - with Distinct set, duplicates are removed across all shards as they
//     arrive (set semantics fused into the merge).
type ScatterGather struct {
	Branches []Operator
	// BranchExecs lists, per branch, the source-call operators inside that
	// branch's subtree. When most branches have finished, the execs of the
	// ones still running are hurried (Exec.Hurry) so the runtime can
	// speculatively re-submit a straggling shard to one of its replicas and
	// keep whichever copy answers first. Nil disables straggler detection.
	BranchExecs [][]*Exec
	// MaxParallel bounds concurrently draining branches; 0 = all at once.
	MaxParallel int
	// Distinct applies set semantics across the merged shard streams.
	Distinct bool

	ch       chan *types.Batch
	free     chan *types.Batch
	stop     chan struct{}
	stopOnce sync.Once
	// branchCancel cancels the context the branches (and their source
	// calls) run under. Close fires it so an early-aborting consumer
	// actively reclaims the capacity its still-running sibling branches
	// hold at the sources — their in-flight submits observe the cancel and
	// the wire clients send cancel frames — instead of leaving them to run
	// out their deadlines. On a normally drained fan-out every branch has
	// already finished and the cancel is a no-op.
	branchCancel context.CancelFunc

	doneMu     sync.Mutex
	branchDone []bool
	finished   int

	errMu sync.Mutex
	err   error

	seen   map[string]bool
	keyer  types.Keyer
	cur    *types.Batch // incoming batch being copied out
	cursor int
}

// Open implements Operator: it launches one goroutine per branch. Each
// goroutine owns its branch operator (opens, drains and closes it), so no
// operator is ever touched from two goroutines.
func (s *ScatterGather) Open(ctx context.Context) error {
	bound := s.MaxParallel
	if bound <= 0 || bound > len(s.Branches) {
		bound = len(s.Branches)
	}
	s.ch = make(chan *types.Batch, bound)
	s.free = make(chan *types.Batch, 2*bound+2)
	s.stop = make(chan struct{})
	s.stopOnce = sync.Once{}
	s.err = nil
	s.cur = nil
	s.cursor = 0
	if s.Distinct {
		s.seen = make(map[string]bool)
	}
	s.branchDone = make([]bool, len(s.Branches))
	s.finished = 0
	bctx, bcancel := context.WithCancel(ctx)
	s.branchCancel = bcancel
	sem := make(chan struct{}, bound)
	var wg sync.WaitGroup
	for i, br := range s.Branches {
		wg.Add(1)
		go func(i int, br Operator) {
			defer wg.Done()
			acquired := false
			select {
			case sem <- struct{}{}:
				acquired = true
			case <-s.stop:
				return
			case <-bctx.Done():
				// Deadline passed while queued: run anyway — the branch's
				// submit observes the dead context and reports its shard
				// unavailable, which partial evaluation needs on record.
			}
			if acquired {
				defer func() { <-sem }()
			}
			s.drainBranch(bctx, br)
			s.branchComplete(i)
		}(i, br)
	}
	go func() {
		wg.Wait()
		close(s.ch)
	}()
	return nil
}

// takeBatch recycles a drained batch from the free list, or allocates one.
func (s *ScatterGather) takeBatch() *types.Batch {
	select {
	case b := <-s.free:
		return b
	default:
		return types.NewBatch(0)
	}
}

// putBatch returns a batch to the free list (dropped if the list is full).
func (s *ScatterGather) putBatch(b *types.Batch) {
	select {
	case s.free <- b:
	default:
	}
}

// drainBranch runs one branch to exhaustion, streaming its batches into the
// merge channel. A sent batch is owned by the consumer until it reappears
// on the free list.
func (s *ScatterGather) drainBranch(ctx context.Context, br Operator) {
	defer br.Close()
	if err := br.Open(ctx); err != nil {
		s.setErr(err)
		return
	}
	for {
		if err := cancelErr(ctx); err != nil {
			s.setErr(err)
			return
		}
		b := s.takeBatch()
		err := br.NextBatch(b)
		if err == io.EOF {
			s.putBatch(b)
			return
		}
		if err != nil {
			s.putBatch(b)
			s.setErr(err)
			return
		}
		if b.Len() == 0 {
			s.putBatch(b)
			continue
		}
		select {
		case s.ch <- b:
		case <-s.stop:
			return
		}
	}
}

// branchComplete marks one branch finished and, once the stragglers are
// down to the last quarter of the fan-out (at least one), hurries the
// in-flight execs of every unfinished branch. Hurry is idempotent and
// skips unstarted execs, so repeated sweeps as the tail drains are cheap
// and a branch still queued behind the concurrency bound is left alone.
func (s *ScatterGather) branchComplete(i int) {
	if s.BranchExecs == nil {
		return
	}
	s.doneMu.Lock()
	s.branchDone[i] = true
	s.finished++
	remaining := len(s.Branches) - s.finished
	var hurry []*Exec
	if remaining > 0 && remaining <= stragglerQuota(len(s.Branches)) {
		for j, done := range s.branchDone {
			if !done && j < len(s.BranchExecs) {
				hurry = append(hurry, s.BranchExecs[j]...)
			}
		}
	}
	s.doneMu.Unlock()
	for _, e := range hurry {
		e.Hurry()
	}
}

// stragglerQuota is how many trailing branches count as stragglers.
func stragglerQuota(n int) int {
	if q := n / 4; q > 1 {
		return q
	}
	return 1
}

// setErr records the fan-out's error. A genuine source failure takes
// precedence over unavailability (it aborts the whole query, §4); among
// errors of equal rank the first one wins.
func (s *ScatterGather) setErr(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err == nil || (!isUnavailable(err) && isUnavailable(s.err)) {
		s.err = err
	}
}

func (s *ScatterGather) drainErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func isUnavailable(err error) bool {
	var ue *UnavailableError
	return errors.As(err, &ue)
}

// NextBatch implements Operator: it returns merged values in arrival order
// and, once every branch has finished, the recorded error (if any) or
// io.EOF. It blocks only while empty-handed: once the output batch holds
// data, a momentarily quiet merge channel returns the partial batch rather
// than stalling the consumer on the slowest shard.
func (s *ScatterGather) NextBatch(out *types.Batch) error {
	out.Reset()
	for {
		if s.cur != nil {
			vals := s.cur.Values()
			for s.cursor < len(vals) && !out.Full() {
				v := vals[s.cursor]
				s.cursor++
				if s.Distinct {
					// NextBatch is single-consumer, so the keyer's buffer
					// reuse is safe even though branches produce concurrently.
					k := s.keyer.Key(v)
					if s.seen[k] {
						continue
					}
					s.seen[k] = true
				}
				out.Append(v)
			}
			if s.cursor >= len(vals) {
				s.putBatch(s.cur)
				s.cur = nil
			}
			if out.Full() {
				return nil
			}
		}
		if out.Len() > 0 {
			select {
			case b, ok := <-s.ch:
				if !ok {
					return nil // batch already holds data; EOF next call
				}
				s.cur = b
				s.cursor = 0
			default:
				return nil
			}
			continue
		}
		b, ok := <-s.ch
		if !ok {
			if err := s.drainErr(); err != nil {
				return err
			}
			return io.EOF
		}
		s.cur = b
		s.cursor = 0
	}
}

// Close implements Operator. It signals the branch goroutines to stop and
// returns without waiting: a branch blocked on a silent shard holds no
// resources beyond its context-bounded source call, which expires at the
// evaluation deadline. Closing an operator that was never opened is a
// no-op — a sibling's failed Open cascades Close through subtrees in
// arbitrary states.
func (s *ScatterGather) Close() error {
	if s.stop == nil {
		return nil
	}
	s.stopOnce.Do(func() {
		close(s.stop)
		// Cancel the branch contexts too: stop only unblocks branches
		// parked on the merge channel, while the cancel reaches the ones
		// still inside a source call, whose servers then stop the work.
		s.branchCancel()
	})
	return nil
}
