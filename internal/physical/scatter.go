package physical

import (
	"context"
	"errors"
	"io"
	"sync"

	"disco/internal/types"
)

// ScatterGather executes the branches of a partition fan-out concurrently
// and merges their streams in arrival order — the physical operator behind
// a parallel union over the shards of a horizontally partitioned extent.
//
// Semantics:
//   - every branch runs in its own goroutine, gated by a semaphore of
//     MaxParallel slots (0 = unbounded), so a thousand-shard extent cannot
//     stampede its sources;
//   - values stream to the consumer as shards produce them (bag semantics
//     make the arrival-order merge sound);
//   - a failing shard does not abort the others: all branches run to
//     completion and the first error surfaces only after the surviving
//     shards have been drained, which is what lets partial evaluation keep
//     the answered shards' data and leave only the missing partitions in
//     the residual query;
//   - with Distinct set, duplicates are removed across all shards as they
//     arrive (set semantics fused into the merge).
type ScatterGather struct {
	Branches []Operator
	// MaxParallel bounds concurrently draining branches; 0 = all at once.
	MaxParallel int
	// Distinct applies set semantics across the merged shard streams.
	Distinct bool

	ch       chan types.Value
	stop     chan struct{}
	stopOnce sync.Once

	errMu sync.Mutex
	err   error

	seen  map[string]bool
	keyer types.Keyer
}

// Open implements Operator: it launches one goroutine per branch. Each
// goroutine owns its branch operator (opens, drains and closes it), so no
// operator is ever touched from two goroutines.
func (s *ScatterGather) Open(ctx context.Context) error {
	s.ch = make(chan types.Value, 16)
	s.stop = make(chan struct{})
	s.stopOnce = sync.Once{}
	s.err = nil
	if s.Distinct {
		s.seen = make(map[string]bool)
	}
	bound := s.MaxParallel
	if bound <= 0 || bound > len(s.Branches) {
		bound = len(s.Branches)
	}
	sem := make(chan struct{}, bound)
	var wg sync.WaitGroup
	for _, br := range s.Branches {
		wg.Add(1)
		go func(br Operator) {
			defer wg.Done()
			acquired := false
			select {
			case sem <- struct{}{}:
				acquired = true
			case <-s.stop:
				return
			case <-ctx.Done():
				// Deadline passed while queued: run anyway — the branch's
				// submit observes the dead context and reports its shard
				// unavailable, which partial evaluation needs on record.
			}
			if acquired {
				defer func() { <-sem }()
			}
			s.drainBranch(ctx, br)
		}(br)
	}
	go func() {
		wg.Wait()
		close(s.ch)
	}()
	return nil
}

// drainBranch runs one branch to exhaustion, streaming its values into the
// merge channel.
func (s *ScatterGather) drainBranch(ctx context.Context, br Operator) {
	defer br.Close()
	if err := br.Open(ctx); err != nil {
		s.setErr(err)
		return
	}
	for {
		v, err := br.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			s.setErr(err)
			return
		}
		select {
		case s.ch <- v:
		case <-s.stop:
			return
		}
	}
}

// setErr records the fan-out's error. A genuine source failure takes
// precedence over unavailability (it aborts the whole query, §4); among
// errors of equal rank the first one wins.
func (s *ScatterGather) setErr(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err == nil || (!isUnavailable(err) && isUnavailable(s.err)) {
		s.err = err
	}
}

func (s *ScatterGather) drainErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func isUnavailable(err error) bool {
	var ue *UnavailableError
	return errors.As(err, &ue)
}

// Next implements Operator: it returns merged values in arrival order and,
// once every branch has finished, the recorded error (if any) or io.EOF.
func (s *ScatterGather) Next() (types.Value, error) {
	for {
		v, ok := <-s.ch
		if !ok {
			if err := s.drainErr(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		if s.Distinct {
			// Next is single-consumer, so the keyer's buffer reuse is safe
			// even though branches produce concurrently.
			k := s.keyer.Key(v)
			if s.seen[k] {
				continue
			}
			s.seen[k] = true
		}
		return v, nil
	}
}

// Close implements Operator. It signals the branch goroutines to stop and
// returns without waiting: a branch blocked on a silent shard holds no
// resources beyond its context-bounded source call, which expires at the
// evaluation deadline.
func (s *ScatterGather) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	return nil
}
