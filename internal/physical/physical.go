// Package physical implements DISCO's physical algebra (paper §3.3): the
// Volcano-style iterator operators the run-time system executes, including
// the exec physical algorithm that implements the submit logical operator.
//
// exec calls "proceed in parallel; calls to available data sources succeed;
// calls to unavailable data sources block" (§4) — every exec in a plan is
// launched concurrently when the plan starts, and a blocked call surfaces
// as an UnavailableError when the evaluation deadline passes, which is what
// partial evaluation reacts to.
package physical

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

// Operator is a Volcano-style iterator. Operators are single-use: Open,
// Next until io.EOF, Close.
type Operator interface {
	Open(ctx context.Context) error
	Next() (types.Value, error)
	Close() error
}

// UnavailableError marks a data source that did not answer before the
// evaluation deadline — the §4 trigger for partial answers.
type UnavailableError struct {
	Repo string
	Err  error
}

// Error implements the error interface.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("data source %s unavailable: %v", e.Repo, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *UnavailableError) Unwrap() error { return e.Err }

// SubmitFunc executes a submit expression at a repository: the runtime
// binds it to wrapper lookup, namespace translation, execution and cost
// recording. It must return *UnavailableError (possibly wrapped) when the
// source does not respond.
type SubmitFunc func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error)

// Runtime supplies the environment operators need.
type Runtime struct {
	// Submit executes source calls.
	Submit SubmitFunc
	// Resolver resolves free collection names in scalar expressions
	// (correlated subqueries in projections and predicates).
	Resolver oql.Resolver
	// MaxFanout bounds how many partition shards a scatter-gather operator
	// drains concurrently; 0 or negative means unbounded (every shard at
	// once, the paper's §4 "calls proceed in parallel").
	MaxFanout int
}

// resolver tolerates a nil receiver so operators constructed directly
// (tests, benchmarks) evaluate pure expressions without a runtime.
func (rt *Runtime) resolver() oql.Resolver {
	if rt == nil || rt.Resolver == nil {
		return oql.EmptyResolver
	}
	return rt.Resolver
}

// --- exec -------------------------------------------------------------------

type execResult struct {
	bag *types.Bag
	err error
}

// Exec is the physical algorithm for submit. Start launches the remote
// call; Next streams the materialized result.
type Exec struct {
	Repo string
	Expr algebra.Node // source-side logical expression, mediator namespace

	rt       *Runtime
	startMu  sync.Mutex
	resCh    chan execResult
	waitOnce sync.Once
	res      execResult
	idx      int
}

// NewExec returns an exec operator for a submit node.
func NewExec(repo string, expr algebra.Node, rt *Runtime) *Exec {
	return &Exec{Repo: repo, Expr: expr, rt: rt}
}

// Start launches the source call in the background. It is idempotent.
func (e *Exec) Start(ctx context.Context) {
	e.startMu.Lock()
	defer e.startMu.Unlock()
	if e.resCh != nil {
		return
	}
	e.resCh = make(chan execResult, 1)
	go func() {
		bag, err := e.rt.Submit(ctx, e.Repo, e.Expr)
		e.resCh <- execResult{bag: bag, err: err}
	}()
}

// Wait blocks until the call completes (the submit function itself honors
// the context deadline) and returns its outcome. It is safe for concurrent
// callers: the scatter-gather operator and the plan's outcome collection may
// both wait on the same exec.
func (e *Exec) Wait() (*types.Bag, error) {
	e.startMu.Lock()
	ch := e.resCh
	e.startMu.Unlock()
	if ch == nil {
		return nil, fmt.Errorf("physical: exec %s not started", e.Repo)
	}
	e.waitOnce.Do(func() { e.res = <-ch })
	return e.res.bag, e.res.err
}

// Outcome reports the call's result for partial evaluation. An exec that
// was never started (its scatter-gather slot never came up before the plan
// aborted) counts as unavailable: the mediator has no data from it, so its
// subtree must stay in the residual query.
func (e *Exec) Outcome() Outcome {
	e.startMu.Lock()
	ch := e.resCh
	e.startMu.Unlock()
	if ch == nil {
		return Outcome{Err: &UnavailableError{Repo: e.Repo, Err: errors.New("source call not attempted")}}
	}
	bag, err := e.Wait()
	return Outcome{Bag: bag, Err: err}
}

// Open implements Operator.
func (e *Exec) Open(ctx context.Context) error {
	e.Start(ctx)
	e.idx = 0
	return nil
}

// Next implements Operator.
func (e *Exec) Next() (types.Value, error) {
	bag, err := e.Wait()
	if err != nil {
		return nil, err
	}
	if e.idx >= bag.Len() {
		return nil, io.EOF
	}
	v := bag.At(e.idx)
	e.idx++
	return v, nil
}

// Close implements Operator.
func (e *Exec) Close() error { return nil }

// --- scan-like operators ------------------------------------------------------

// ConstScan streams an in-memory bag (the paper's file-scan analog for
// embedded data).
type ConstScan struct {
	Bag *types.Bag
	idx int
}

// Open implements Operator.
func (c *ConstScan) Open(context.Context) error {
	c.idx = 0
	return nil
}

// Next implements Operator.
func (c *ConstScan) Next() (types.Value, error) {
	if c.idx >= c.Bag.Len() {
		return nil, io.EOF
	}
	v := c.Bag.At(c.idx)
	c.idx++
	return v, nil
}

// Close implements Operator.
func (c *ConstScan) Close() error { return nil }

// EvalScan evaluates an arbitrary OQL expression with the reference
// evaluator and yields the single resulting value.
type EvalScan struct {
	Expr oql.Expr
	rt   *Runtime
	done bool
}

// Open implements Operator.
func (s *EvalScan) Open(context.Context) error {
	s.done = false
	return nil
}

// Next implements Operator.
func (s *EvalScan) Next() (types.Value, error) {
	if s.done {
		return nil, io.EOF
	}
	s.done = true
	return oql.Eval(s.Expr, nil, s.rt.resolver())
}

// Close implements Operator.
func (s *EvalScan) Close() error { return nil }

// --- element-wise operators ---------------------------------------------------

// MkBind wraps each input element into a {var: elem} struct.
type MkBind struct {
	Var   string
	Input Operator
}

// Open implements Operator.
func (b *MkBind) Open(ctx context.Context) error { return b.Input.Open(ctx) }

// Next implements Operator.
func (b *MkBind) Next() (types.Value, error) {
	v, err := b.Input.Next()
	if err != nil {
		return nil, err
	}
	return types.NewStruct(types.Field{Name: b.Var, Value: v}), nil
}

// Close implements Operator.
func (b *MkBind) Close() error { return b.Input.Close() }

// MkSelect filters elements by a predicate.
type MkSelect struct {
	Pred  oql.Expr
	Input Operator
	rt    *Runtime
}

// Open implements Operator.
func (s *MkSelect) Open(ctx context.Context) error { return s.Input.Open(ctx) }

// Next implements Operator.
func (s *MkSelect) Next() (types.Value, error) {
	for {
		v, err := s.Input.Next()
		if err != nil {
			return nil, err
		}
		cond, err := evalWith(s.Pred, v, s.rt)
		if err != nil {
			return nil, err
		}
		keep, err := types.Truthy(cond)
		if err != nil {
			return nil, err
		}
		if keep {
			return v, nil
		}
	}
}

// Close implements Operator.
func (s *MkSelect) Close() error { return s.Input.Close() }

// MkProj projects each element to a struct of named columns.
type MkProj struct {
	Cols  []algebra.Col
	Input Operator
	rt    *Runtime
}

// Open implements Operator.
func (p *MkProj) Open(ctx context.Context) error { return p.Input.Open(ctx) }

// Next implements Operator.
func (p *MkProj) Next() (types.Value, error) {
	v, err := p.Input.Next()
	if err != nil {
		return nil, err
	}
	fields := make([]types.Field, 0, len(p.Cols))
	for _, c := range p.Cols {
		fv, err := evalWith(c.Expr, v, p.rt)
		if err != nil {
			return nil, err
		}
		fields = append(fields, types.Field{Name: c.Name, Value: fv})
	}
	return types.NewStruct(fields...), nil
}

// Close implements Operator.
func (p *MkProj) Close() error { return p.Input.Close() }

// MkMap evaluates an arbitrary expression per element.
type MkMap struct {
	Expr  oql.Expr
	Input Operator
	rt    *Runtime
}

// Open implements Operator.
func (m *MkMap) Open(ctx context.Context) error { return m.Input.Open(ctx) }

// Next implements Operator.
func (m *MkMap) Next() (types.Value, error) {
	v, err := m.Input.Next()
	if err != nil {
		return nil, err
	}
	return evalWith(m.Expr, v, m.rt)
}

// Close implements Operator.
func (m *MkMap) Close() error { return m.Input.Close() }

// MkNest regroups flat joined tuples into per-variable structs.
type MkNest struct {
	Groups []algebra.NestGroup
	Input  Operator
}

// Open implements Operator.
func (n *MkNest) Open(ctx context.Context) error { return n.Input.Open(ctx) }

// Next implements Operator.
func (n *MkNest) Next() (types.Value, error) {
	v, err := n.Input.Next()
	if err != nil {
		return nil, err
	}
	st, ok := v.(*types.Struct)
	if !ok {
		return nil, fmt.Errorf("physical: nest over %s", v.Kind())
	}
	outer := make([]types.Field, 0, len(n.Groups))
	for _, g := range n.Groups {
		inner := make([]types.Field, 0, len(g.Attrs))
		for _, a := range g.Attrs {
			fv, ok := st.Get(a)
			if !ok {
				return nil, fmt.Errorf("physical: nest attribute %q missing in %s", a, st)
			}
			inner = append(inner, types.Field{Name: a, Value: fv})
		}
		outer = append(outer, types.Field{Name: g.Var, Value: types.NewStruct(inner...)})
	}
	return types.NewStruct(outer...), nil
}

// Close implements Operator.
func (n *MkNest) Close() error { return n.Input.Close() }

// MkDepend expands a dependent binding: for each input env it evaluates the
// domain expression and emits one extended env per domain element.
type MkDepend struct {
	Var    string
	Domain oql.Expr
	Input  Operator
	rt     *Runtime

	pending []types.Value
	cursor  int
}

// Open implements Operator.
func (d *MkDepend) Open(ctx context.Context) error {
	d.pending = d.pending[:0]
	d.cursor = 0
	return d.Input.Open(ctx)
}

// Next implements Operator.
func (d *MkDepend) Next() (types.Value, error) {
	for {
		if d.cursor < len(d.pending) {
			v := d.pending[d.cursor]
			d.cursor++
			return v, nil
		}
		env, err := d.Input.Next()
		if err != nil {
			return nil, err
		}
		st, ok := env.(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("physical: depend over %s", env.Kind())
		}
		dom, err := evalWith(d.Domain, env, d.rt)
		if err != nil {
			return nil, err
		}
		d.pending = d.pending[:0]
		d.cursor = 0
		if err := types.RangeElements(dom, func(e types.Value) bool {
			d.pending = append(d.pending, types.NewStruct(append(st.Fields(), types.Field{Name: d.Var, Value: e})...))
			return true
		}); err != nil {
			return nil, fmt.Errorf("physical: dependent domain for %s: %w", d.Var, err)
		}
	}
}

// Close implements Operator.
func (d *MkDepend) Close() error { return d.Input.Close() }

// MkUnion concatenates its inputs (bag union).
type MkUnion struct {
	Inputs []Operator
	// scalar marks inputs whose single element is itself a collection to
	// splice (aggregate results used as union operands).
	scalarInput []bool
	cur         int
	pending     []types.Value
	cursor      int
}

// Open implements Operator.
func (u *MkUnion) Open(ctx context.Context) error {
	u.cur = 0
	u.pending = u.pending[:0]
	u.cursor = 0
	for _, in := range u.Inputs {
		if err := in.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (u *MkUnion) Next() (types.Value, error) {
	for {
		if u.cursor < len(u.pending) {
			v := u.pending[u.cursor]
			u.cursor++
			return v, nil
		}
		if u.cur >= len(u.Inputs) {
			return nil, io.EOF
		}
		v, err := u.Inputs[u.cur].Next()
		if err == io.EOF {
			u.cur++
			continue
		}
		if err != nil {
			return nil, err
		}
		if u.scalarInput != nil && u.scalarInput[u.cur] {
			u.pending = u.pending[:0]
			u.cursor = 0
			if err := types.RangeElements(v, func(e types.Value) bool {
				u.pending = append(u.pending, e)
				return true
			}); err != nil {
				return nil, fmt.Errorf("physical: union operand: %w", err)
			}
			continue
		}
		return v, nil
	}
}

// Close implements Operator.
func (u *MkUnion) Close() error {
	var first error
	for _, in := range u.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MkDistinct removes duplicates.
type MkDistinct struct {
	Input Operator
	seen  map[string]bool
	keyer types.Keyer
}

// Open implements Operator.
func (d *MkDistinct) Open(ctx context.Context) error {
	d.seen = make(map[string]bool)
	return d.Input.Open(ctx)
}

// Next implements Operator.
func (d *MkDistinct) Next() (types.Value, error) {
	for {
		v, err := d.Input.Next()
		if err != nil {
			return nil, err
		}
		k := d.keyer.Key(v)
		if !d.seen[k] {
			d.seen[k] = true
			return v, nil
		}
	}
}

// Close implements Operator.
func (d *MkDistinct) Close() error { return d.Input.Close() }

// MkFlatten splices the elements of collection-valued elements. The
// pending buffer is reused across input elements (cursor + truncate), so
// flattening does not re-copy every inner collection.
type MkFlatten struct {
	Input   Operator
	pending []types.Value
	cursor  int
}

// Open implements Operator.
func (f *MkFlatten) Open(ctx context.Context) error {
	f.pending = f.pending[:0]
	f.cursor = 0
	return f.Input.Open(ctx)
}

// Next implements Operator.
func (f *MkFlatten) Next() (types.Value, error) {
	for {
		if f.cursor < len(f.pending) {
			v := f.pending[f.cursor]
			f.cursor++
			return v, nil
		}
		v, err := f.Input.Next()
		if err != nil {
			return nil, err
		}
		f.pending = f.pending[:0]
		f.cursor = 0
		if err := types.RangeElements(v, func(e types.Value) bool {
			f.pending = append(f.pending, e)
			return true
		}); err != nil {
			return nil, fmt.Errorf("physical: flatten: %w", err)
		}
	}
}

// Close implements Operator.
func (f *MkFlatten) Close() error { return f.Input.Close() }

// MkAgg drains its input and yields the single aggregate value.
type MkAgg struct {
	Fn    string
	Input Operator
	done  bool
}

// Open implements Operator.
func (a *MkAgg) Open(ctx context.Context) error {
	a.done = false
	return a.Input.Open(ctx)
}

// Next implements Operator.
func (a *MkAgg) Next() (types.Value, error) {
	if a.done {
		return nil, io.EOF
	}
	a.done = true
	var elems []types.Value
	for {
		v, err := a.Input.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		elems = append(elems, v)
	}
	return oql.ApplyCall(a.Fn, []types.Value{types.NewBag(elems...)})
}

// Close implements Operator.
func (a *MkAgg) Close() error { return a.Input.Close() }

// evalWith evaluates an expression with the element's struct fields bound
// as variables.
func evalWith(e oql.Expr, elem types.Value, rt *Runtime) (types.Value, error) {
	st, ok := elem.(*types.Struct)
	if !ok {
		return nil, fmt.Errorf("physical: expression %s over non-struct element %s", e, elem)
	}
	var env *oql.Env
	for _, f := range st.Fields() {
		env = env.Bind(f.Name, f.Value)
	}
	return oql.Eval(e, env, rt.resolver())
}

// Drain runs an operator to exhaustion and returns its elements.
func Drain(ctx context.Context, op Operator) ([]types.Value, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Value
	for {
		v, err := op.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
}
