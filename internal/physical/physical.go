// Package physical implements DISCO's physical algebra (paper §3.3): the
// Volcano-style operators the run-time system executes, including the exec
// physical algorithm that implements the submit logical operator.
//
// Operators are batch-at-a-time: NextBatch moves up to types.BatchSize
// values per call through reusable buffers, so per-call overhead (interface
// dispatch, predicate setup, channel operations in the scatter-gather
// merge) amortizes over the batch instead of recurring per tuple. Scalar
// expressions inside operators — predicates, projections, join keys — run
// as closure-compiled programs (oql.Compile) bound to a per-operator
// FlatEnv hoisted in Open, not rebuilt per tuple.
//
// exec calls "proceed in parallel; calls to available data sources succeed;
// calls to unavailable data sources block" (§4) — every exec in a plan is
// launched concurrently when the plan starts, and a blocked call surfaces
// as an UnavailableError when the evaluation deadline passes, which is what
// partial evaluation reacts to.
package physical

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

// Operator is a Volcano-style batch iterator. Operators are single-use:
// Open, NextBatch until io.EOF, Close. NextBatch resets the caller's batch
// and fills it with one to Cap values; io.EOF means the stream is exhausted
// and the batch holds nothing.
type Operator interface {
	Open(ctx context.Context) error
	NextBatch(b *types.Batch) error
	Close() error
}

// UnavailableError marks a data source that did not answer before the
// evaluation deadline — the §4 trigger for partial answers.
type UnavailableError struct {
	Repo string
	Err  error
}

// Error implements the error interface.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("data source %s unavailable: %v", e.Repo, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *UnavailableError) Unwrap() error { return e.Err }

// SubmitFunc executes a submit expression at a repository: the runtime
// binds it to wrapper lookup, namespace translation, execution and cost
// recording. It must return *UnavailableError (possibly wrapped) when the
// source does not respond.
type SubmitFunc func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error)

// Runtime supplies the environment operators need.
type Runtime struct {
	// Submit executes source calls.
	Submit SubmitFunc
	// Resolver resolves free collection names in scalar expressions
	// (correlated subqueries in projections and predicates).
	Resolver oql.Resolver
	// MaxFanout bounds how many partition shards a scatter-gather operator
	// drains concurrently; 0 or negative means unbounded (every shard at
	// once, the paper's §4 "calls proceed in parallel").
	MaxFanout int
	// Programs caches compiled expression programs. The mediator shares one
	// per prepared plan, so re-executing a cached plan skips compilation;
	// nil compiles per operator instance.
	Programs *oql.ProgramCache
}

// resolver tolerates a nil receiver so operators constructed directly
// (tests, benchmarks) evaluate pure expressions without a runtime.
func (rt *Runtime) resolver() oql.Resolver {
	if rt == nil || rt.Resolver == nil {
		return oql.EmptyResolver
	}
	return rt.Resolver
}

// compileProg compiles (or fetches from the runtime's cache) the program
// for one operator expression.
func compileProg(rt *Runtime, e oql.Expr) (*oql.Program, error) {
	if rt != nil && rt.Programs != nil {
		return rt.Programs.Get(e)
	}
	return oql.Compile(e)
}

// evaluator is the per-operator state for one compiled scalar expression:
// the shared immutable program plus this operator's private environment.
// It is created in Open — never per tuple.
type evaluator struct {
	prog *oql.Program
	env  *oql.FlatEnv
}

// open (re)builds the evaluator for an expression. The program compiles
// once (or comes from the runtime cache); the environment is fresh per
// Open so reopened operators carry no stale bindings.
func (ev *evaluator) open(rt *Runtime, e oql.Expr) error {
	if ev.prog == nil || ev.prog.Expr() != e {
		prog, err := compileProg(rt, e)
		if err != nil {
			return err
		}
		ev.prog = prog
	}
	ev.env = ev.prog.NewEnv(rt.resolver())
	return nil
}

// eval runs the program over one tuple's bindings.
func (ev *evaluator) eval(elem types.Value) (types.Value, error) {
	st, ok := elem.(*types.Struct)
	if !ok {
		return nil, fmt.Errorf("physical: expression %s over non-struct element %s", ev.prog.Expr(), elem)
	}
	ev.env.BindStruct(st)
	return ev.prog.Eval(ev.env)
}

// evalStruct runs the program over an already-checked struct.
func (ev *evaluator) evalStruct(st *types.Struct) (types.Value, error) {
	ev.env.BindStruct(st)
	return ev.prog.Eval(ev.env)
}

// --- exec -------------------------------------------------------------------

type execResult struct {
	bag *types.Bag
	err error
}

// hurryKey carries a per-exec straggler signal through the context of a
// submit call: the channel closes when the scatter-gather operator decides
// the exec's branch is a straggler, and the mediator's submit may react by
// firing an immediate hedge to a replica instead of waiting out the
// per-copy p99 trigger.
type hurryKey struct{}

// HurryChan returns the straggler signal installed by Exec.Start, or nil
// when the submit was not launched under a scatter-gather branch.
func HurryChan(ctx context.Context) <-chan struct{} {
	ch, _ := ctx.Value(hurryKey{}).(<-chan struct{})
	return ch
}

// Exec is the physical algorithm for submit. Start launches the remote
// call; NextBatch streams the materialized result.
type Exec struct {
	Repo string
	Expr algebra.Node // source-side logical expression, mediator namespace

	rt       *Runtime
	startMu  sync.Mutex
	resCh    chan execResult
	hurryCh  chan struct{}
	hurried  bool
	waitOnce sync.Once
	res      execResult
	idx      int
}

// NewExec returns an exec operator for a submit node.
func NewExec(repo string, expr algebra.Node, rt *Runtime) *Exec {
	return &Exec{Repo: repo, Expr: expr, rt: rt}
}

// Start launches the source call in the background. It is idempotent.
func (e *Exec) Start(ctx context.Context) {
	e.startMu.Lock()
	defer e.startMu.Unlock()
	if e.resCh != nil {
		return
	}
	e.resCh = make(chan execResult, 1)
	e.hurryCh = make(chan struct{})
	ctx = context.WithValue(ctx, hurryKey{}, (<-chan struct{})(e.hurryCh))
	go func() {
		bag, err := e.rt.Submit(ctx, e.Repo, e.Expr)
		e.resCh <- execResult{bag: bag, err: err}
	}()
}

// Hurry flags the in-flight source call as a straggler: the submit's
// HurryChan closes, inviting the runtime to speculatively re-submit the
// call to a replica and keep whichever answers first. It is idempotent,
// and a no-op on an exec that has not started (a branch still queued
// behind the fan-out's concurrency bound is waiting, not straggling).
func (e *Exec) Hurry() {
	e.startMu.Lock()
	defer e.startMu.Unlock()
	if e.resCh == nil || e.hurried {
		return
	}
	e.hurried = true
	close(e.hurryCh)
}

// Wait blocks until the call completes (the submit function itself honors
// the context deadline) and returns its outcome. It is safe for concurrent
// callers: the scatter-gather operator and the plan's outcome collection may
// both wait on the same exec.
func (e *Exec) Wait() (*types.Bag, error) {
	e.startMu.Lock()
	ch := e.resCh
	e.startMu.Unlock()
	if ch == nil {
		return nil, fmt.Errorf("physical: exec %s not started", e.Repo)
	}
	e.waitOnce.Do(func() { e.res = <-ch })
	return e.res.bag, e.res.err
}

// Outcome reports the call's result for partial evaluation. An exec that
// was never started (its scatter-gather slot never came up before the plan
// aborted) counts as unavailable: the mediator has no data from it, so its
// subtree must stay in the residual query.
func (e *Exec) Outcome() Outcome {
	e.startMu.Lock()
	ch := e.resCh
	e.startMu.Unlock()
	if ch == nil {
		return Outcome{Err: &UnavailableError{Repo: e.Repo, Err: errors.New("source call not attempted")}}
	}
	bag, err := e.Wait()
	return Outcome{Bag: bag, Err: err}
}

// Open implements Operator.
func (e *Exec) Open(ctx context.Context) error {
	e.Start(ctx)
	e.idx = 0
	return nil
}

// NextBatch implements Operator.
func (e *Exec) NextBatch(out *types.Batch) error {
	bag, err := e.Wait()
	if err != nil {
		return err
	}
	out.Reset()
	if e.idx >= bag.Len() {
		return io.EOF
	}
	for e.idx < bag.Len() && !out.Full() {
		out.Append(bag.At(e.idx))
		e.idx++
	}
	return nil
}

// Close implements Operator.
func (e *Exec) Close() error { return nil }

// --- scan-like operators ------------------------------------------------------

// ConstScan streams an in-memory bag (the paper's file-scan analog for
// embedded data).
type ConstScan struct {
	Bag *types.Bag
	idx int
}

// Open implements Operator.
func (c *ConstScan) Open(context.Context) error {
	c.idx = 0
	return nil
}

// NextBatch implements Operator.
func (c *ConstScan) NextBatch(out *types.Batch) error {
	out.Reset()
	if c.idx >= c.Bag.Len() {
		return io.EOF
	}
	for c.idx < c.Bag.Len() && !out.Full() {
		out.Append(c.Bag.At(c.idx))
		c.idx++
	}
	return nil
}

// Close implements Operator.
func (c *ConstScan) Close() error { return nil }

// EvalScan evaluates an arbitrary OQL expression (compiled) and yields the
// single resulting value.
type EvalScan struct {
	Expr oql.Expr
	rt   *Runtime
	ev   evaluator
	done bool
}

// Open implements Operator.
func (s *EvalScan) Open(context.Context) error {
	s.done = false
	return s.ev.open(s.rt, s.Expr)
}

// NextBatch implements Operator.
func (s *EvalScan) NextBatch(out *types.Batch) error {
	out.Reset()
	if s.done {
		return io.EOF
	}
	s.done = true
	v, err := s.ev.prog.Eval(s.ev.env)
	if err != nil {
		return err
	}
	out.Append(v)
	return nil
}

// Close implements Operator.
func (s *EvalScan) Close() error { return nil }

// --- element-wise operators ---------------------------------------------------

// MkBind wraps each input element into a {var: elem} struct, in place.
type MkBind struct {
	Var   string
	Input Operator
}

// Open implements Operator.
func (b *MkBind) Open(ctx context.Context) error { return b.Input.Open(ctx) }

// NextBatch implements Operator.
func (b *MkBind) NextBatch(out *types.Batch) error {
	if err := b.Input.NextBatch(out); err != nil {
		return err
	}
	vals := out.Values()
	for i, v := range vals {
		vals[i] = types.StructFromFields([]types.Field{{Name: b.Var, Value: v}})
	}
	return nil
}

// Close implements Operator.
func (b *MkBind) Close() error { return b.Input.Close() }

// MkSelect filters elements by a compiled predicate. Each input batch is
// filtered through a reusable selection vector: survivor indices are
// recorded, then the batch is compacted in place — no per-tuple output
// bookkeeping and no allocation on the filter path.
type MkSelect struct {
	Pred  oql.Expr
	Input Operator
	rt    *Runtime

	ev  evaluator
	sel []int32
}

// Open implements Operator.
func (s *MkSelect) Open(ctx context.Context) error {
	if err := s.ev.open(s.rt, s.Pred); err != nil {
		return err
	}
	return s.Input.Open(ctx)
}

// NextBatch implements Operator.
func (s *MkSelect) NextBatch(out *types.Batch) error {
	for {
		if err := s.Input.NextBatch(out); err != nil {
			return err
		}
		vals := out.Values()
		s.sel = s.sel[:0]
		for i, v := range vals {
			cond, err := s.ev.eval(v)
			if err != nil {
				return err
			}
			keep, err := types.Truthy(cond)
			if err != nil {
				return err
			}
			if keep {
				s.sel = append(s.sel, int32(i))
			}
		}
		if len(s.sel) == len(vals) {
			return nil // everything passed; no compaction needed
		}
		for j, i := range s.sel {
			vals[j] = vals[i]
		}
		out.Truncate(len(s.sel))
		if out.Len() > 0 {
			return nil
		}
	}
}

// Close implements Operator.
func (s *MkSelect) Close() error { return s.Input.Close() }

// MkProj projects each element to a struct of named columns. The whole
// column list compiles into one struct-constructor program, so a tuple
// binds its variables once however many columns there are. Build presets
// the program cached under the logical Project node (the synthesized
// constructor expression has a fresh pointer per build, so it cannot be
// the cache key itself); directly constructed operators compile on first
// Open.
type MkProj struct {
	Cols  []algebra.Col
	Input Operator
	rt    *Runtime

	ev evaluator
}

// Open implements Operator.
func (p *MkProj) Open(ctx context.Context) error {
	if p.ev.prog == nil {
		// Direct construction (no Build): compile uncached — the fresh
		// constructor pointer must not become a runtime-cache key.
		prog, err := oql.Compile(algebra.ProjCtor(p.Cols))
		if err != nil {
			return err
		}
		p.ev.prog = prog
	}
	p.ev.env = p.ev.prog.NewEnv(p.rt.resolver())
	return p.Input.Open(ctx)
}

// NextBatch implements Operator.
func (p *MkProj) NextBatch(out *types.Batch) error {
	if err := p.Input.NextBatch(out); err != nil {
		return err
	}
	vals := out.Values()
	for i, v := range vals {
		fv, err := p.ev.eval(v)
		if err != nil {
			return err
		}
		vals[i] = fv
	}
	return nil
}

// Close implements Operator.
func (p *MkProj) Close() error { return p.Input.Close() }

// MkMap evaluates an arbitrary compiled expression per element, in place.
type MkMap struct {
	Expr  oql.Expr
	Input Operator
	rt    *Runtime

	ev evaluator
}

// Open implements Operator.
func (m *MkMap) Open(ctx context.Context) error {
	if err := m.ev.open(m.rt, m.Expr); err != nil {
		return err
	}
	return m.Input.Open(ctx)
}

// NextBatch implements Operator.
func (m *MkMap) NextBatch(out *types.Batch) error {
	if err := m.Input.NextBatch(out); err != nil {
		return err
	}
	vals := out.Values()
	for i, v := range vals {
		fv, err := m.ev.eval(v)
		if err != nil {
			return err
		}
		vals[i] = fv
	}
	return nil
}

// Close implements Operator.
func (m *MkMap) Close() error { return m.Input.Close() }

// MkNest regroups flat joined tuples into per-variable structs, in place.
type MkNest struct {
	Groups []algebra.NestGroup
	Input  Operator
}

// Open implements Operator.
func (n *MkNest) Open(ctx context.Context) error { return n.Input.Open(ctx) }

// NextBatch implements Operator.
func (n *MkNest) NextBatch(out *types.Batch) error {
	if err := n.Input.NextBatch(out); err != nil {
		return err
	}
	vals := out.Values()
	for i, v := range vals {
		st, ok := v.(*types.Struct)
		if !ok {
			return fmt.Errorf("physical: nest over %s", v.Kind())
		}
		outer := make([]types.Field, 0, len(n.Groups))
		for _, g := range n.Groups {
			inner := make([]types.Field, 0, len(g.Attrs))
			for _, a := range g.Attrs {
				fv, ok := st.Get(a)
				if !ok {
					return fmt.Errorf("physical: nest attribute %q missing in %s", a, st)
				}
				inner = append(inner, types.Field{Name: a, Value: fv})
			}
			outer = append(outer, types.Field{Name: g.Var, Value: types.NewStruct(inner...)})
		}
		vals[i] = types.NewStruct(outer...)
	}
	return nil
}

// Close implements Operator.
func (n *MkNest) Close() error { return n.Input.Close() }

// MkDepend expands a dependent binding: for each input env it evaluates the
// domain expression and emits one extended env per domain element.
type MkDepend struct {
	Var    string
	Domain oql.Expr
	Input  Operator
	rt     *Runtime

	ev      evaluator
	in      *types.Batch
	cursor  int
	pending []types.Value
	pcur    int
}

// Open implements Operator.
func (d *MkDepend) Open(ctx context.Context) error {
	if err := d.ev.open(d.rt, d.Domain); err != nil {
		return err
	}
	if d.in == nil {
		d.in = types.NewBatch(0)
	}
	d.in.Reset()
	d.cursor = 0
	d.pending = d.pending[:0]
	d.pcur = 0
	return d.Input.Open(ctx)
}

// NextBatch implements Operator.
func (d *MkDepend) NextBatch(out *types.Batch) error {
	out.Reset()
	for !out.Full() {
		if d.pcur < len(d.pending) {
			out.Append(d.pending[d.pcur])
			d.pcur++
			continue
		}
		if d.cursor >= d.in.Len() {
			if err := d.Input.NextBatch(d.in); err != nil {
				if err == io.EOF && out.Len() > 0 {
					return nil
				}
				return err
			}
			d.cursor = 0
		}
		env := d.in.At(d.cursor)
		d.cursor++
		st, ok := env.(*types.Struct)
		if !ok {
			return fmt.Errorf("physical: depend over %s", env.Kind())
		}
		dom, err := d.ev.evalStruct(st)
		if err != nil {
			return err
		}
		d.pending = d.pending[:0]
		d.pcur = 0
		if err := types.RangeElements(dom, func(e types.Value) bool {
			d.pending = append(d.pending, types.ExtendStruct(st, types.Field{Name: d.Var, Value: e}))
			return true
		}); err != nil {
			return fmt.Errorf("physical: dependent domain for %s: %w", d.Var, err)
		}
	}
	return nil
}

// Close implements Operator.
func (d *MkDepend) Close() error { return d.Input.Close() }

// MkUnion concatenates its inputs (bag union), forwarding whole batches
// from non-scalar inputs.
type MkUnion struct {
	Inputs []Operator
	// scalar marks inputs whose single element is itself a collection to
	// splice (aggregate results used as union operands).
	scalarInput []bool
	cur         int
	scratch     *types.Batch
	pending     []types.Value
	pcur        int
}

// Open implements Operator.
func (u *MkUnion) Open(ctx context.Context) error {
	u.cur = 0
	u.pending = u.pending[:0]
	u.pcur = 0
	for _, in := range u.Inputs {
		if err := in.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

// NextBatch implements Operator.
func (u *MkUnion) NextBatch(out *types.Batch) error {
	out.Reset()
	for {
		if u.pcur < len(u.pending) {
			for u.pcur < len(u.pending) && !out.Full() {
				out.Append(u.pending[u.pcur])
				u.pcur++
			}
			if out.Len() > 0 {
				return nil
			}
		}
		if u.cur >= len(u.Inputs) {
			if out.Len() > 0 {
				return nil
			}
			return io.EOF
		}
		if u.scalarInput != nil && u.scalarInput[u.cur] {
			if u.scratch == nil {
				u.scratch = types.NewBatch(0)
			}
			err := u.Inputs[u.cur].NextBatch(u.scratch)
			if err == io.EOF {
				u.cur++
				continue
			}
			if err != nil {
				return err
			}
			u.pending = u.pending[:0]
			u.pcur = 0
			for _, v := range u.scratch.Values() {
				if err := types.RangeElements(v, func(e types.Value) bool {
					u.pending = append(u.pending, e)
					return true
				}); err != nil {
					return fmt.Errorf("physical: union operand: %w", err)
				}
			}
			continue
		}
		err := u.Inputs[u.cur].NextBatch(out)
		if err == io.EOF {
			u.cur++
			continue
		}
		return err
	}
}

// Close implements Operator.
func (u *MkUnion) Close() error {
	var first error
	for _, in := range u.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MkDistinct removes duplicates, compacting each batch in place.
type MkDistinct struct {
	Input Operator
	seen  map[string]bool
	keyer types.Keyer
}

// Open implements Operator.
func (d *MkDistinct) Open(ctx context.Context) error {
	d.seen = make(map[string]bool)
	return d.Input.Open(ctx)
}

// NextBatch implements Operator.
func (d *MkDistinct) NextBatch(out *types.Batch) error {
	for {
		if err := d.Input.NextBatch(out); err != nil {
			return err
		}
		vals := out.Values()
		n := 0
		for _, v := range vals {
			k := d.keyer.Key(v)
			if !d.seen[k] {
				d.seen[k] = true
				vals[n] = v
				n++
			}
		}
		out.Truncate(n)
		if n > 0 {
			return nil
		}
	}
}

// Close implements Operator.
func (d *MkDistinct) Close() error { return d.Input.Close() }

// MkFlatten splices the elements of collection-valued elements. The
// pending buffer is reused across input elements (cursor + truncate), so
// flattening does not re-copy every inner collection.
type MkFlatten struct {
	Input   Operator
	in      *types.Batch
	cursor  int
	pending []types.Value
	pcur    int
}

// Open implements Operator.
func (f *MkFlatten) Open(ctx context.Context) error {
	if f.in == nil {
		f.in = types.NewBatch(0)
	}
	f.in.Reset()
	f.cursor = 0
	f.pending = f.pending[:0]
	f.pcur = 0
	return f.Input.Open(ctx)
}

// NextBatch implements Operator.
func (f *MkFlatten) NextBatch(out *types.Batch) error {
	out.Reset()
	for !out.Full() {
		if f.pcur < len(f.pending) {
			out.Append(f.pending[f.pcur])
			f.pcur++
			continue
		}
		if f.cursor >= f.in.Len() {
			if err := f.Input.NextBatch(f.in); err != nil {
				if err == io.EOF && out.Len() > 0 {
					return nil
				}
				return err
			}
			f.cursor = 0
		}
		v := f.in.At(f.cursor)
		f.cursor++
		f.pending = f.pending[:0]
		f.pcur = 0
		if err := types.RangeElements(v, func(e types.Value) bool {
			f.pending = append(f.pending, e)
			return true
		}); err != nil {
			return fmt.Errorf("physical: flatten: %w", err)
		}
	}
	return nil
}

// Close implements Operator.
func (f *MkFlatten) Close() error { return f.Input.Close() }

// MkAgg drains its input and yields the single aggregate value.
type MkAgg struct {
	Fn    string
	Input Operator
	done  bool
	in    *types.Batch
	ctx   context.Context
}

// Open implements Operator.
func (a *MkAgg) Open(ctx context.Context) error {
	a.done = false
	a.ctx = ctx
	if a.in == nil {
		a.in = types.NewBatch(0)
	}
	return a.Input.Open(ctx)
}

// NextBatch implements Operator.
func (a *MkAgg) NextBatch(out *types.Batch) error {
	out.Reset()
	if a.done {
		return io.EOF
	}
	a.done = true
	var elems []types.Value
	for {
		// The aggregate's inner drain bypasses Drain's loop, so it carries
		// its own batch-boundary cancellation check.
		if err := cancelErr(a.ctx); err != nil {
			return err
		}
		err := a.Input.NextBatch(a.in)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		elems = append(elems, a.in.Values()...)
	}
	v, err := oql.ApplyCall(a.Fn, []types.Value{types.NewBag(elems...)})
	if err != nil {
		return err
	}
	out.Append(v)
	return nil
}

// Close implements Operator.
func (a *MkAgg) Close() error { return a.Input.Close() }

// cancelErr reports the context's error when the context was cancelled —
// and stays nil when (only) a deadline fired. The distinction is
// load-bearing for partial evaluation: the mediator's own evaluation
// deadline (§4) must reach the in-flight exec calls and come back as
// per-source UnavailableErrors, the trigger for partial answers, so
// operator loops abort eagerly only on true cancellation — a caller that
// walked away, a hedge loser, a plan being torn down — where nobody wants
// any answer at all.
func cancelErr(ctx context.Context) error {
	if ctx == nil {
		return nil // operator constructed and driven directly, no context
	}
	if err := ctx.Err(); err == context.Canceled {
		return err
	}
	return nil
}

// Drain runs an operator to exhaustion and returns its elements. The
// operator is closed even when Open fails partway: a composite whose n-th
// input failed to open may already have launched goroutines under inputs
// 1..n-1 (a scatter-gather's branches), and only the Close cascade stops
// them. A cancelled context stops the loop at the next batch boundary.
func Drain(ctx context.Context, op Operator) ([]types.Value, error) {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	b := types.NewBatch(0)
	var out []types.Value
	for {
		if err := cancelErr(ctx); err != nil {
			return nil, err
		}
		err := op.NextBatch(b)
		if err == io.EOF {
			// End-of-stream is the bare sentinel, compared by identity: a
			// transport failure that *wraps* io.EOF (a peer hanging up
			// mid-answer) must surface as the error it is, not silently
			// truncate the stream into a smaller complete answer.
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b.Values()...)
	}
}
