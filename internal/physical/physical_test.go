package physical

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

// --- fixture (mirrors the algebra tests' two-source person schema) ---------

func personRef(extent, repo string) algebra.ExtentRef {
	return algebra.ExtentRef{
		Extent: extent, Repo: repo, Source: extent, Iface: "Person",
		Attrs: []string{"id", "name", "salary"},
	}
}

type fixtureResolver struct{}

func (fixtureResolver) ResolvePlan(name string, star bool) (algebra.Node, error) {
	switch name {
	case "person0":
		return &algebra.Submit{Repo: "r0", Input: &algebra.Get{Ref: personRef("person0", "r0")}}, nil
	case "person1":
		return &algebra.Submit{Repo: "r1", Input: &algebra.Get{Ref: personRef("person1", "r1")}}, nil
	case "person":
		return &algebra.Union{Inputs: []algebra.Node{
			&algebra.Submit{Repo: "r0", Input: &algebra.Get{Ref: personRef("person0", "r0")}},
			&algebra.Submit{Repo: "r1", Input: &algebra.Get{Ref: personRef("person1", "r1")}},
		}}, nil
	default:
		return nil, fmt.Errorf("unknown extent %q", name)
	}
}

func person(id int64, name string, salary int64) *types.Struct {
	return types.NewStruct(
		types.Field{Name: "id", Value: types.Int(id)},
		types.Field{Name: "name", Value: types.Str(name)},
		types.Field{Name: "salary", Value: types.Int(salary)},
	)
}

func stores() map[string]algebra.CollectionsMap {
	return map[string]algebra.CollectionsMap{
		"r0": {"person0": types.NewBag(person(1, "Mary", 200), person(3, "Ann", 5))},
		"r1": {"person1": types.NewBag(person(2, "Sam", 50), person(1, "Mary", 55))},
	}
}

// fixtureRuntime builds a Runtime whose submits run against in-memory
// stores, with optional per-repo latency and unavailability.
type fixtureRuntime struct {
	data    map[string]algebra.CollectionsMap
	latency map[string]time.Duration
	down    map[string]bool
}

func (f *fixtureRuntime) runtime() *Runtime {
	rt := &Runtime{}
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		if f.down[repo] {
			// A down source blocks until the deadline, like a hung server.
			<-ctx.Done()
			return nil, &UnavailableError{Repo: repo, Err: ctx.Err()}
		}
		if d := f.latency[repo]; d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, &UnavailableError{Repo: repo, Err: ctx.Err()}
			}
		}
		cols, ok := f.data[repo]
		if !ok {
			return nil, fmt.Errorf("unknown repo %q", repo)
		}
		src, err := algebra.ToSource(expr)
		if err != nil {
			return nil, err
		}
		in := &algebra.Interp{Cols: cols}
		v, err := in.Run(src)
		if err != nil {
			return nil, err
		}
		return v.(*types.Bag), nil
	}
	rt.Resolver = oql.ResolverFunc(func(name string, star bool) (types.Value, error) {
		plan, err := fixtureResolver{}.ResolvePlan(name, star)
		if err != nil {
			return nil, err
		}
		p, err := Build(plan, rt)
		if err != nil {
			return nil, err
		}
		return p.Run(context.Background())
	})
	return rt
}

func compile(t *testing.T, src string) algebra.Node {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := algebra.Compile(e, fixtureResolver{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestPlansAgreeWithInterp: the physical runtime must agree with the
// logical interpreter on the shared query corpus, for raw and fully
// rewritten plans.
func TestPlansAgreeWithInterp(t *testing.T) {
	queries := []string{
		`select x.name from x in person where x.salary > 10`,
		`select struct(name: x.name, salary: x.salary) from x in person0`,
		`select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id`,
		`select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id and x.salary > y.salary`,
		`select distinct x.name from x in person`,
		`count(person)`,
		`sum(select x.salary from x in person)`,
		`union(select x.name from x in person0, bag("Zoe"))`,
		`select x.salary * 2 from x in person1`,
		`flatten(bag(bag(1), bag(2)))`,
		`select struct(n: x.name, c: count(select z from z in person1 where z.id = x.id)) from x in person0`,
	}
	f := &fixtureRuntime{data: stores()}
	rt := f.runtime()
	for _, src := range queries {
		for _, rewrite := range []bool{false, true} {
			plan := compile(t, src)
			if rewrite {
				plan = algebra.Push(algebra.Normalize(plan), algebra.AcceptAll{}, algebra.PushOptions{Select: true, Project: true, Join: true})
			}
			p, err := Build(plan, rt)
			if err != nil {
				t.Fatalf("build %q: %v", src, err)
			}
			got, err := p.Run(context.Background())
			if err != nil {
				t.Errorf("run %q (rewrite=%v): %v", src, rewrite, err)
				continue
			}
			in := &algebra.Interp{
				Submitter: func(repo string, expr algebra.Node) (types.Value, error) {
					return rt.Submit(context.Background(), repo, expr)
				},
				Resolver: rt.Resolver,
			}
			want, err := in.Run(plan)
			if err != nil {
				t.Fatalf("interp %q: %v", src, err)
			}
			if !got.Equal(want) {
				t.Errorf("%q (rewrite=%v):\n physical %s\n interp   %s\n plan %s", src, rewrite, got, want, plan)
			}
		}
	}
}

func TestHashJoinChosenForEquiJoin(t *testing.T) {
	f := &fixtureRuntime{data: stores()}
	rt := f.runtime()
	plan := compile(t, `select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.id = y.id`)
	plan = algebra.Normalize(plan)
	p, err := Build(plan, rt)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	var visit func(op Operator)
	visit = func(op Operator) {
		switch x := op.(type) {
		case *HashJoin:
			found = true
		case *NLJoin:
			visit(x.L)
			visit(x.R)
		case *MkProj:
			visit(x.Input)
		case *MkSelect:
			visit(x.Input)
		case *MkMap:
			visit(x.Input)
		case *MkBind:
			visit(x.Input)
		}
	}
	visit(p.Root)
	if !found {
		t.Errorf("equi-join should implement as hash join")
	}
}

func TestNLJoinForNonEquiPredicates(t *testing.T) {
	f := &fixtureRuntime{data: stores()}
	rt := f.runtime()
	plan := algebra.Normalize(compile(t, `select struct(a: x.name, b: y.name) from x in person0, y in person1 where x.salary > y.salary`))
	p, err := Build(plan, rt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Mary(200) and Ann(5) vs Sam(50) and Mary(55): pairs where left > right.
	if got.(*types.Bag).Len() != 2 {
		t.Errorf("rows = %d, want 2: %s", got.(*types.Bag).Len(), got)
	}
}

// TestExecsRunInParallel is the §4 property: exec calls proceed in
// parallel, so two sources with 100ms latency answer in ~100ms, not 200.
func TestExecsRunInParallel(t *testing.T) {
	f := &fixtureRuntime{
		data:    stores(),
		latency: map[string]time.Duration{"r0": 100 * time.Millisecond, "r1": 100 * time.Millisecond},
	}
	rt := f.runtime()
	plan := compile(t, `select x.name from x in person where x.salary > 10`)
	p, err := Build(plan, rt)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 180*time.Millisecond {
		t.Errorf("two 100ms sources took %v; exec calls must run in parallel", elapsed)
	}
}

func TestUnavailableSourceSurfacesAndOutcomesComplete(t *testing.T) {
	f := &fixtureRuntime{data: stores(), down: map[string]bool{"r0": true}}
	rt := f.runtime()
	plan := compile(t, `select x.name from x in person where x.salary > 10`)
	p, err := Build(plan, rt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = p.Run(ctx)
	var ue *UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnavailableError", err)
	}
	if ue.Repo != "r0" {
		t.Errorf("unavailable repo = %s", ue.Repo)
	}
	// All outcomes are known afterwards: r0 failed, r1 delivered data.
	outcomes := p.Outcomes()
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	for sub, o := range outcomes {
		switch sub.Repo {
		case "r0":
			if o.Err == nil {
				t.Error("r0 should have failed")
			}
		case "r1":
			if o.Err != nil || o.Bag.Len() != 2 {
				t.Errorf("r1 outcome = %+v", o)
			}
		}
	}
}

func TestScalarPlan(t *testing.T) {
	f := &fixtureRuntime{data: stores()}
	rt := f.runtime()
	p, err := Build(compile(t, `count(person)`), rt)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Scalar {
		t.Error("count plan should be scalar")
	}
	got, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(types.Int(4)) {
		t.Errorf("count = %s", got)
	}
}

func TestBareGetIsABuildError(t *testing.T) {
	f := &fixtureRuntime{data: stores()}
	rt := f.runtime()
	bad := &algebra.Get{Ref: personRef("person0", "r0")}
	if _, err := Build(bad, rt); err == nil {
		t.Error("bare get outside submit should fail to build")
	}
}

func TestRemoteErrorIsNotUnavailable(t *testing.T) {
	// A source that answers with an error (bad query, type mismatch) is a
	// query failure, not an unavailability.
	rt := &Runtime{Submit: func(context.Context, string, algebra.Node) (*types.Bag, error) {
		return nil, fmt.Errorf("type mismatch at source")
	}}
	plan := compile(t, `select x.name from x in person0`)
	p, err := Build(plan, rt)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(context.Background())
	if err == nil {
		t.Fatal("expected error")
	}
	var ue *UnavailableError
	if errors.As(err, &ue) {
		t.Error("remote errors must not classify as unavailable")
	}
}

func TestEquiKeyExtraction(t *testing.T) {
	l := map[string]bool{"x": true}
	r := map[string]bool{"y": true}
	pred := func(src string) oql.Expr {
		e, err := oql.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	lk, rk, res, ok := equiKey(pred(`x.id = y.id`), l, r)
	if !ok || lk.String() != "x.id" || rk.String() != "y.id" || res != nil {
		t.Errorf("simple equi: %v %v %v %v", lk, rk, res, ok)
	}
	// Mirrored orientation.
	lk, rk, _, ok = equiKey(pred(`y.id = x.id`), l, r)
	if !ok || lk.String() != "x.id" || rk.String() != "y.id" {
		t.Errorf("mirrored equi: %v %v", lk, rk)
	}
	// Conjunction keeps the non-equi part as residual.
	_, _, res, ok = equiKey(pred(`x.id = y.id and x.a > y.b`), l, r)
	if !ok || res == nil {
		t.Errorf("residual missing: %v %v", res, ok)
	}
	// No usable equality.
	if _, _, _, ok := equiKey(pred(`x.a > y.b`), l, r); ok {
		t.Error("range predicate should not produce a hash key")
	}
	if _, _, _, ok := equiKey(pred(`x.a = x.b`), l, r); ok {
		t.Error("single-side equality should not produce a hash key")
	}
}

func TestOperatorsRewindOnReopen(t *testing.T) {
	c := &ConstScan{Bag: types.NewBag(types.Int(1), types.Int(2))}
	for round := 0; round < 2; round++ {
		got, err := Drain(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("round %d: %d elements", round, len(got))
		}
	}
}
