package physical

import (
	"context"
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

func parseExpr(t *testing.T, src string) oql.Expr {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEvalScan(t *testing.T) {
	rt := &Runtime{}
	op := &EvalScan{Expr: parseExpr(t, `1 + 2`), rt: rt}
	out, err := Drain(context.Background(), op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Equal(types.Int(3)) {
		t.Errorf("eval scan = %v", out)
	}
	// Reopen rewinds.
	out, err = Drain(context.Background(), op)
	if err != nil || len(out) != 1 {
		t.Errorf("reopen: %v, %v", out, err)
	}
	// Errors propagate.
	bad := &EvalScan{Expr: parseExpr(t, `1 / 0`), rt: rt}
	if _, err := Drain(context.Background(), bad); err == nil {
		t.Error("division by zero should surface")
	}
}

func TestMkNestErrors(t *testing.T) {
	groups := []algebra.NestGroup{{Var: "x", Attrs: []string{"a"}}}
	// Missing attribute.
	op := &MkNest{Groups: groups, Input: &ConstScan{Bag: types.NewBag(
		types.NewStruct(types.Field{Name: "other", Value: types.Int(1)}),
	)}}
	if _, err := Drain(context.Background(), op); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("err = %v", err)
	}
	// Non-struct element.
	op2 := &MkNest{Groups: groups, Input: &ConstScan{Bag: types.NewBag(types.Int(5))}}
	if _, err := Drain(context.Background(), op2); err == nil {
		t.Error("nest over scalar should fail")
	}
}

func TestMkDependDirect(t *testing.T) {
	rt := &Runtime{}
	envs := types.NewBag(
		types.NewStruct(types.Field{Name: "g", Value: types.NewStruct(
			types.Field{Name: "kids", Value: types.NewBag(types.Int(1), types.Int(2))},
		)}),
	)
	op := &MkDepend{Var: "k", Domain: parseExpr(t, `g.kids`), Input: &ConstScan{Bag: envs}, rt: rt}
	out, err := Drain(context.Background(), op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("depend fan-out = %d", len(out))
	}
	st := out[0].(*types.Struct)
	if _, ok := st.Get("k"); !ok {
		t.Errorf("bound var missing: %s", st)
	}
	// Non-collection domain errors.
	bad := &MkDepend{Var: "k", Domain: parseExpr(t, `5`), Input: &ConstScan{Bag: envs}, rt: rt}
	if _, err := Drain(context.Background(), bad); err == nil {
		t.Error("scalar domain should fail")
	}
	// Non-struct env errors.
	bad2 := &MkDepend{Var: "k", Domain: parseExpr(t, `g`), Input: &ConstScan{Bag: types.NewBag(types.Int(1))}, rt: rt}
	if _, err := Drain(context.Background(), bad2); err == nil {
		t.Error("scalar env should fail")
	}
}

func TestMkAggEmptyInput(t *testing.T) {
	op := &MkAgg{Fn: "sum", Input: &ConstScan{Bag: types.NewBag()}}
	out, err := Drain(context.Background(), op)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Equal(types.Int(0)) {
		t.Errorf("sum of empty = %v", out)
	}
}

func TestMkUnionScalarOperandMustBeCollection(t *testing.T) {
	// A scalar-producing input whose single value is not a collection
	// (count) cannot union.
	agg := &MkAgg{Fn: "count", Input: &ConstScan{Bag: types.NewBag(types.Int(1))}}
	op := &MkUnion{Inputs: []Operator{agg}, scalarInput: []bool{true}}
	if _, err := Drain(context.Background(), op); err == nil {
		t.Error("union over a scalar aggregate should fail like the reference evaluator")
	}
	// But an eval producing a bag splices.
	ev := &EvalScan{Expr: parseExpr(t, `bag(1, 2)`), rt: &Runtime{}}
	op2 := &MkUnion{Inputs: []Operator{ev}, scalarInput: []bool{true}}
	out, err := Drain(context.Background(), op2)
	if err != nil || len(out) != 2 {
		t.Errorf("union splice = %v, %v", out, err)
	}
}

func TestExecWaitWithoutStart(t *testing.T) {
	e := NewExec("r0", &algebra.Const{Data: types.NewBag()}, &Runtime{})
	if _, err := e.Wait(); err == nil {
		t.Error("wait before start should fail")
	}
}

func TestUnavailableErrorString(t *testing.T) {
	err := &UnavailableError{Repo: "r0", Err: context.DeadlineExceeded}
	if !strings.Contains(err.Error(), "r0") || !strings.Contains(err.Error(), "unavailable") {
		t.Errorf("error text = %q", err)
	}
}

func TestMkSelectNonBooleanPredicate(t *testing.T) {
	rt := &Runtime{}
	op := &MkSelect{
		Pred:  parseExpr(t, `x`),
		Input: &MkBind{Var: "x", Input: &ConstScan{Bag: types.NewBag(types.Int(1))}},
		rt:    rt,
	}
	if _, err := Drain(context.Background(), op); err == nil {
		t.Error("non-boolean predicate should fail")
	}
}

func TestMkFlattenNonCollection(t *testing.T) {
	op := &MkFlatten{Input: &ConstScan{Bag: types.NewBag(types.Int(1))}}
	if _, err := Drain(context.Background(), op); err == nil {
		t.Error("flatten of scalars should fail")
	}
}
