package physical

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/types"
)

// waitGoroutines polls until the goroutine count falls back to within
// slack of base, and reports the final count.
func waitGoroutines(base, slack int) int {
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// bigShardSubmit returns a submit function whose every shard yields enough
// rows that each branch produces several batches — so branch goroutines
// are guaranteed to block sending once the merge channel fills.
func bigShardSubmit() SubmitFunc {
	return func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		elems := make([]types.Value, 8*types.BatchSize)
		for i := range elems {
			elems[i] = types.Str(repo)
		}
		return types.NewBag(elems...), nil
	}
}

type failingOpen struct{}

func (failingOpen) Open(context.Context) error   { return errors.New("boom: open failed") }
func (failingOpen) NextBatch(*types.Batch) error { return errors.New("unreachable") }
func (failingOpen) Close() error                 { return nil }

// TestScatterGatherSiblingOpenFailureDoesNotLeak is the leak the audit
// found: when a sibling operator fails to Open after a scatter-gather
// already launched its branch goroutines, the plan must still close the
// fan-out — otherwise branches block forever sending into a merge channel
// nobody drains.
func TestScatterGatherSiblingOpenFailureDoesNotLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	rt := &Runtime{Submit: bigShardSubmit()}
	repos := make([]string, 6)
	for i := range repos {
		repos[i] = fmt.Sprintf("r%d", i)
	}
	p, err := Build(shardPlan("people", repos...), rt)
	if err != nil {
		t.Fatal(err)
	}
	u := &MkUnion{Inputs: []Operator{p.Root, failingOpen{}}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := Drain(ctx, u); err == nil {
		t.Fatal("Drain should surface the sibling's Open failure")
	}
	if n := waitGoroutines(base, 2); n > base+2 {
		t.Errorf("goroutines leaked: %d before, %d after failed Open", base, n)
	}
}

// TestScatterGatherEarlyCloseRecyclesAndStops: closing the fan-out while
// branches are mid-stream (blocked sending recycled batches) must unblock
// and drain every branch goroutine without double-recycling a buffer —
// run under -race this is the early-close ownership check.
func TestScatterGatherEarlyCloseRecyclesAndStops(t *testing.T) {
	base := runtime.NumGoroutine()
	rt := &Runtime{Submit: bigShardSubmit()}
	repos := make([]string, 8)
	for i := range repos {
		repos[i] = fmt.Sprintf("r%d", i)
	}
	p, err := Build(shardPlan("people", repos...), rt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.Root.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Read one batch so the free list is live, then abandon the merge.
	b := types.NewBatch(0)
	if err := p.Root.NextBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Root.Close(); err != nil {
		t.Fatal(err)
	}
	if n := waitGoroutines(base, 2); n > base+2 {
		t.Errorf("goroutines leaked after early Close: %d before, %d after", base, n)
	}
}

// TestScatterGatherCloseBeforeOpen: Close on a never-opened operator is a
// no-op (a sibling's failed Open cascades Close through unopened
// subtrees).
func TestScatterGatherCloseBeforeOpen(t *testing.T) {
	s := &ScatterGather{Branches: []Operator{&ConstScan{Bag: types.NewBag()}}}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// And it must still be openable afterwards.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.NextBatch(types.NewBatch(0)); err == nil {
		t.Fatal("empty fan-out should report EOF")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
