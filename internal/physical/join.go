package physical

import (
	"context"
	"fmt"
	"io"

	"disco/internal/oql"
	"disco/internal/types"
)

// NLJoin is the nested-loop join: it materializes the right input and scans
// it once per left element. It handles arbitrary predicates (including
// cross products when Pred is nil). The predicate is compiled once and the
// left input streams in batches; output batches fill across left elements,
// with the scan position carried between calls.
type NLJoin struct {
	L, R Operator
	Pred oql.Expr
	rt   *Runtime

	ev      evaluator
	ctx     context.Context
	right   []*types.Struct
	left    *types.Batch
	li      int
	curLeft *types.Struct
	ri      int
}

// Open implements Operator.
func (j *NLJoin) Open(ctx context.Context) error {
	j.ctx = ctx
	if j.Pred != nil {
		if err := j.ev.open(j.rt, j.Pred); err != nil {
			return err
		}
	}
	if err := j.L.Open(ctx); err != nil {
		return err
	}
	right, err := Drain(ctx, j.R)
	if err != nil {
		return err
	}
	j.right = j.right[:0]
	for _, v := range right {
		st, ok := v.(*types.Struct)
		if !ok {
			return fmt.Errorf("physical: join over %s elements", v.Kind())
		}
		j.right = append(j.right, st)
	}
	if j.left == nil {
		j.left = types.NewBatch(0)
	}
	j.left.Reset()
	j.li = 0
	j.curLeft = nil
	j.ri = 0
	return nil
}

// NextBatch implements Operator.
func (j *NLJoin) NextBatch(out *types.Batch) error {
	out.Reset()
	for !out.Full() {
		if j.curLeft == nil {
			if j.li >= j.left.Len() {
				// Per-left-batch cancellation check: the nested loop does
				// O(|L|·|R|) work below this point, and a cancelled caller
				// must not pay for the rest of it.
				if err := cancelErr(j.ctx); err != nil {
					return err
				}
				if err := j.L.NextBatch(j.left); err != nil {
					if err == io.EOF && out.Len() > 0 {
						return nil
					}
					return err
				}
				j.li = 0
			}
			v := j.left.At(j.li)
			j.li++
			st, ok := v.(*types.Struct)
			if !ok {
				return fmt.Errorf("physical: join over %s elements", v.Kind())
			}
			j.curLeft = st
			j.ri = 0
		}
		for j.ri < len(j.right) && !out.Full() {
			rs := j.right[j.ri]
			j.ri++
			merged := types.JoinStructs(j.curLeft, rs)
			if j.Pred != nil {
				cond, err := j.ev.evalStruct(merged)
				if err != nil {
					return err
				}
				keep, err := types.Truthy(cond)
				if err != nil {
					return err
				}
				if !keep {
					continue
				}
			}
			out.Append(merged)
		}
		if j.ri >= len(j.right) {
			j.curLeft = nil
		}
	}
	return nil
}

// Close implements Operator.
func (j *NLJoin) Close() error {
	errL := j.L.Close()
	errR := j.R.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// HashJoin implements equi-joins: it builds a hash table over the right
// input keyed by RKey and probes it with LKey per left element. Residual
// carries any non-equi conjuncts evaluated after the probe. The probe is
// batched: each left batch's keys are computed in one pass (reusing the
// operator's key scratch), then matches stream out with the probe position
// carried between calls.
type HashJoin struct {
	L, R       Operator
	LKey, RKey oql.Expr
	Residual   oql.Expr
	rt         *Runtime

	lkEv, rkEv, resEv evaluator
	ctx               context.Context
	table             map[string][]*types.Struct
	keyer             types.Keyer

	left    *types.Batch
	keys    []string
	li      int
	curLeft *types.Struct
	matches []*types.Struct
	mi      int
}

// Open implements Operator.
func (j *HashJoin) Open(ctx context.Context) error {
	j.ctx = ctx
	if err := j.lkEv.open(j.rt, j.LKey); err != nil {
		return err
	}
	if err := j.rkEv.open(j.rt, j.RKey); err != nil {
		return err
	}
	if j.Residual != nil {
		if err := j.resEv.open(j.rt, j.Residual); err != nil {
			return err
		}
	}
	if err := j.L.Open(ctx); err != nil {
		return err
	}
	right, err := Drain(ctx, j.R)
	if err != nil {
		return err
	}
	j.table = make(map[string][]*types.Struct, len(right))
	for _, v := range right {
		st, ok := v.(*types.Struct)
		if !ok {
			return fmt.Errorf("physical: join over %s elements", v.Kind())
		}
		key, err := j.rkEv.evalStruct(st)
		if err != nil {
			return err
		}
		k := j.keyer.Key(key)
		j.table[k] = append(j.table[k], st)
	}
	if j.left == nil {
		j.left = types.NewBatch(0)
	}
	j.left.Reset()
	j.li = 0
	j.curLeft = nil
	j.matches = nil
	j.mi = 0
	return nil
}

// NextBatch implements Operator.
func (j *HashJoin) NextBatch(out *types.Batch) error {
	out.Reset()
	for !out.Full() {
		if j.mi < len(j.matches) {
			rs := j.matches[j.mi]
			j.mi++
			merged := types.JoinStructs(j.curLeft, rs)
			if j.Residual != nil {
				cond, err := j.resEv.evalStruct(merged)
				if err != nil {
					return err
				}
				keep, err := types.Truthy(cond)
				if err != nil {
					return err
				}
				if !keep {
					continue
				}
			}
			out.Append(merged)
			continue
		}
		if j.li >= j.left.Len() {
			// Per-left-batch cancellation check, mirroring NLJoin's.
			if err := cancelErr(j.ctx); err != nil {
				return err
			}
			if err := j.L.NextBatch(j.left); err != nil {
				if err == io.EOF && out.Len() > 0 {
					return nil
				}
				return err
			}
			j.li = 0
			// Batched probe: key the whole batch in one pass before any
			// matches stream out.
			j.keys = j.keys[:0]
			for _, v := range j.left.Values() {
				st, ok := v.(*types.Struct)
				if !ok {
					return fmt.Errorf("physical: join over %s elements", v.Kind())
				}
				key, err := j.lkEv.evalStruct(st)
				if err != nil {
					return err
				}
				j.keys = append(j.keys, j.keyer.Key(key))
			}
		}
		j.curLeft = j.left.At(j.li).(*types.Struct)
		j.matches = j.table[j.keys[j.li]]
		j.mi = 0
		j.li++
	}
	return nil
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	errL := j.L.Close()
	errR := j.R.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// equiKey deconstructs a join predicate into an equality between a
// left-side and a right-side expression, plus a residual conjunct. It
// returns ok=false when no usable equality exists, in which case the
// implementation rule falls back to a nested loop.
func equiKey(pred oql.Expr, lVars, rVars map[string]bool) (lk, rk, residual oql.Expr, ok bool) {
	conjuncts := splitAnd(pred)
	for i, c := range conjuncts {
		bin, isBin := c.(*oql.Binary)
		if !isBin || bin.Op != oql.OpEq {
			continue
		}
		lSide, rSide := sideOf(bin.L, lVars, rVars), sideOf(bin.R, lVars, rVars)
		var l, r oql.Expr
		switch {
		case lSide == "l" && rSide == "r":
			l, r = bin.L, bin.R
		case lSide == "r" && rSide == "l":
			l, r = bin.R, bin.L
		default:
			continue
		}
		rest := append(append([]oql.Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return l, r, conjoinExprs(rest), true
	}
	return nil, nil, nil, false
}

func splitAnd(e oql.Expr) []oql.Expr {
	if bin, ok := e.(*oql.Binary); ok && bin.Op == oql.OpAnd {
		return append(splitAnd(bin.L), splitAnd(bin.R)...)
	}
	return []oql.Expr{e}
}

func conjoinExprs(conj []oql.Expr) oql.Expr {
	var out oql.Expr
	for _, c := range conj {
		if out == nil {
			out = c
		} else {
			out = &oql.Binary{Op: oql.OpAnd, L: out, R: c}
		}
	}
	return out
}

// sideOf classifies which join side an expression's free names belong to:
// "l", "r", "const" (neither) or "mixed".
func sideOf(e oql.Expr, lVars, rVars map[string]bool) string {
	names := oql.FreeNames(e)
	usesL, usesR := false, false
	for _, n := range names {
		switch {
		case lVars[n]:
			usesL = true
		case rVars[n]:
			usesR = true
		default:
			// A free name outside both sides (extent reference in a
			// correlated predicate): treat as mixed so the rule backs off.
			return "mixed"
		}
	}
	switch {
	case usesL && usesR:
		return "mixed"
	case usesL:
		return "l"
	case usesR:
		return "r"
	default:
		return "const"
	}
}

// compile-time checks
var (
	_ Operator = (*NLJoin)(nil)
	_ Operator = (*HashJoin)(nil)
	_ Operator = (*Exec)(nil)
	_ Operator = (*ConstScan)(nil)
	_ Operator = (*EvalScan)(nil)
	_ Operator = (*MkBind)(nil)
	_ Operator = (*MkSelect)(nil)
	_ Operator = (*MkProj)(nil)
	_ Operator = (*MkMap)(nil)
	_ Operator = (*MkNest)(nil)
	_ Operator = (*MkDepend)(nil)
	_ Operator = (*MkUnion)(nil)
	_ Operator = (*MkDistinct)(nil)
	_ Operator = (*MkFlatten)(nil)
	_ Operator = (*MkAgg)(nil)
	_ Operator = (*ScatterGather)(nil)
)
