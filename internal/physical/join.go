package physical

import (
	"context"
	"fmt"

	"disco/internal/oql"
	"disco/internal/types"
)

// NLJoin is the nested-loop join: it materializes the right input and scans
// it once per left element. It handles arbitrary predicates (including
// cross products when Pred is nil).
type NLJoin struct {
	L, R Operator
	Pred oql.Expr
	rt   *Runtime

	right   []types.Value
	curLeft *types.Struct
	ri      int
}

// Open implements Operator.
func (j *NLJoin) Open(ctx context.Context) error {
	if err := j.L.Open(ctx); err != nil {
		return err
	}
	right, err := Drain(ctx, j.R)
	if err != nil {
		return err
	}
	j.right = right
	j.curLeft = nil
	j.ri = 0
	return nil
}

// Next implements Operator.
func (j *NLJoin) Next() (types.Value, error) {
	for {
		if j.curLeft == nil {
			v, err := j.L.Next()
			if err != nil {
				return nil, err
			}
			st, ok := v.(*types.Struct)
			if !ok {
				return nil, fmt.Errorf("physical: join over %s elements", v.Kind())
			}
			j.curLeft = st
			j.ri = 0
		}
		for j.ri < len(j.right) {
			rs, ok := j.right[j.ri].(*types.Struct)
			if !ok {
				return nil, fmt.Errorf("physical: join over %s elements", j.right[j.ri].Kind())
			}
			j.ri++
			merged := types.NewStruct(append(j.curLeft.Fields(), rs.Fields()...)...)
			if j.Pred != nil {
				cond, err := evalWith(j.Pred, merged, j.rt)
				if err != nil {
					return nil, err
				}
				keep, err := types.Truthy(cond)
				if err != nil {
					return nil, err
				}
				if !keep {
					continue
				}
			}
			return merged, nil
		}
		j.curLeft = nil
	}
}

// Close implements Operator.
func (j *NLJoin) Close() error {
	errL := j.L.Close()
	errR := j.R.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// HashJoin implements equi-joins: it builds a hash table over the right
// input keyed by RKey and probes it with LKey per left element. Residual
// carries any non-equi conjuncts evaluated after the probe.
type HashJoin struct {
	L, R       Operator
	LKey, RKey oql.Expr
	Residual   oql.Expr
	rt         *Runtime

	table   map[string][]*types.Struct
	matches []*types.Struct
	curLeft *types.Struct
	keyer   types.Keyer
}

// Open implements Operator.
func (j *HashJoin) Open(ctx context.Context) error {
	if err := j.L.Open(ctx); err != nil {
		return err
	}
	right, err := Drain(ctx, j.R)
	if err != nil {
		return err
	}
	j.table = make(map[string][]*types.Struct, len(right))
	for _, v := range right {
		st, ok := v.(*types.Struct)
		if !ok {
			return fmt.Errorf("physical: join over %s elements", v.Kind())
		}
		key, err := evalWith(j.RKey, st, j.rt)
		if err != nil {
			return err
		}
		k := j.keyer.Key(key)
		j.table[k] = append(j.table[k], st)
	}
	j.matches = nil
	j.curLeft = nil
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() (types.Value, error) {
	for {
		if len(j.matches) > 0 {
			rs := j.matches[0]
			j.matches = j.matches[1:]
			merged := types.NewStruct(append(j.curLeft.Fields(), rs.Fields()...)...)
			if j.Residual != nil {
				cond, err := evalWith(j.Residual, merged, j.rt)
				if err != nil {
					return nil, err
				}
				keep, err := types.Truthy(cond)
				if err != nil {
					return nil, err
				}
				if !keep {
					continue
				}
			}
			return merged, nil
		}
		v, err := j.L.Next()
		if err != nil {
			return nil, err
		}
		st, ok := v.(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("physical: join over %s elements", v.Kind())
		}
		key, err := evalWith(j.LKey, st, j.rt)
		if err != nil {
			return nil, err
		}
		j.curLeft = st
		j.matches = j.table[j.keyer.Key(key)]
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	errL := j.L.Close()
	errR := j.R.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// equiKey deconstructs a join predicate into an equality between a
// left-side and a right-side expression, plus a residual conjunct. It
// returns ok=false when no usable equality exists, in which case the
// implementation rule falls back to a nested loop.
func equiKey(pred oql.Expr, lVars, rVars map[string]bool) (lk, rk, residual oql.Expr, ok bool) {
	conjuncts := splitAnd(pred)
	for i, c := range conjuncts {
		bin, isBin := c.(*oql.Binary)
		if !isBin || bin.Op != oql.OpEq {
			continue
		}
		lSide, rSide := sideOf(bin.L, lVars, rVars), sideOf(bin.R, lVars, rVars)
		var l, r oql.Expr
		switch {
		case lSide == "l" && rSide == "r":
			l, r = bin.L, bin.R
		case lSide == "r" && rSide == "l":
			l, r = bin.R, bin.L
		default:
			continue
		}
		rest := append(append([]oql.Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return l, r, conjoinExprs(rest), true
	}
	return nil, nil, nil, false
}

func splitAnd(e oql.Expr) []oql.Expr {
	if bin, ok := e.(*oql.Binary); ok && bin.Op == oql.OpAnd {
		return append(splitAnd(bin.L), splitAnd(bin.R)...)
	}
	return []oql.Expr{e}
}

func conjoinExprs(conj []oql.Expr) oql.Expr {
	var out oql.Expr
	for _, c := range conj {
		if out == nil {
			out = c
		} else {
			out = &oql.Binary{Op: oql.OpAnd, L: out, R: c}
		}
	}
	return out
}

// sideOf classifies which join side an expression's free names belong to:
// "l", "r", "const" (neither) or "mixed".
func sideOf(e oql.Expr, lVars, rVars map[string]bool) string {
	names := oql.FreeNames(e)
	usesL, usesR := false, false
	for _, n := range names {
		switch {
		case lVars[n]:
			usesL = true
		case rVars[n]:
			usesR = true
		default:
			// A free name outside both sides (extent reference in a
			// correlated predicate): treat as mixed so the rule backs off.
			return "mixed"
		}
	}
	switch {
	case usesL && usesR:
		return "mixed"
	case usesL:
		return "l"
	case usesR:
		return "r"
	default:
		return "const"
	}
}

// compile-time checks
var (
	_ Operator = (*NLJoin)(nil)
	_ Operator = (*HashJoin)(nil)
	_ Operator = (*Exec)(nil)
	_ Operator = (*ConstScan)(nil)
	_ Operator = (*EvalScan)(nil)
	_ Operator = (*MkBind)(nil)
	_ Operator = (*MkSelect)(nil)
	_ Operator = (*MkProj)(nil)
	_ Operator = (*MkMap)(nil)
	_ Operator = (*MkNest)(nil)
	_ Operator = (*MkDepend)(nil)
	_ Operator = (*MkUnion)(nil)
	_ Operator = (*MkDistinct)(nil)
	_ Operator = (*MkFlatten)(nil)
	_ Operator = (*MkAgg)(nil)
)
