package physical

import (
	"context"
	"fmt"

	"disco/internal/algebra"
	"disco/internal/oql"
	"disco/internal/types"
)

// Plan is a runnable physical plan: the operator tree plus the exec
// operators it contains, indexed by their logical submit nodes so partial
// evaluation can match outcomes back to the logical plan.
type Plan struct {
	Logical algebra.Node
	Root    Operator
	// Scalar is true when the plan produces a single value (aggregate or
	// generic eval) rather than a bag.
	Scalar bool
	// Execs maps each logical submit node to its exec operator.
	Execs map[*algebra.Submit]*Exec
	// gated marks execs owned by a scatter-gather operator: Run must not
	// pre-start them, or the operator's concurrency bound would be moot.
	gated map[*Exec]bool
}

// Build translates a logical plan into a physical plan by the
// implementation rules of §3.3: submit becomes exec, union becomes mkunion,
// equi-joins become hash joins, everything else nested loops and
// element-wise operators.
func Build(logical algebra.Node, rt *Runtime) (*Plan, error) {
	p := &Plan{Logical: logical, Execs: make(map[*algebra.Submit]*Exec), gated: make(map[*Exec]bool)}
	root, err := p.build(logical, rt)
	if err != nil {
		return nil, err
	}
	p.Root = root
	switch logical.(type) {
	case *algebra.Agg, *algebra.Eval:
		p.Scalar = true
	}
	return p, nil
}

func (p *Plan) build(n algebra.Node, rt *Runtime) (Operator, error) {
	switch x := n.(type) {
	case *algebra.Const:
		return &ConstScan{Bag: x.Data}, nil
	case *algebra.Submit:
		e := NewExec(x.Repo, x.Input, rt)
		p.Execs[x] = e
		return e, nil
	case *algebra.Get:
		return nil, fmt.Errorf("physical: get(%s) outside submit", x.Ref.Extent)
	case *algebra.Eval:
		return &EvalScan{Expr: x.Expr, rt: rt}, nil
	case *algebra.Union:
		if x.Par && len(x.Inputs) > 1 {
			return p.buildScatterGather(x, false, rt)
		}
		inputs := make([]Operator, len(x.Inputs))
		scalar := make([]bool, len(x.Inputs))
		for i, in := range x.Inputs {
			op, err := p.build(in, rt)
			if err != nil {
				return nil, err
			}
			inputs[i] = op
			switch in.(type) {
			case *algebra.Agg, *algebra.Eval:
				scalar[i] = true
			}
		}
		return &MkUnion{Inputs: inputs, scalarInput: scalar}, nil
	case *algebra.Bind:
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		return &MkBind{Var: x.Var, Input: in}, nil
	case *algebra.Select:
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		return &MkSelect{Pred: x.Pred, Input: in, rt: rt}, nil
	case *algebra.Project:
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		op := &MkProj{Cols: x.Cols, Input: in, rt: rt}
		if rt != nil && rt.Programs != nil {
			// The constructor expression is synthesized fresh per build, so
			// cache its program under the stable logical Project node —
			// otherwise every execution of a prepared plan would miss (and
			// grow) the cache.
			prog, err := rt.Programs.GetKeyed(x, func() oql.Expr { return algebra.ProjCtor(x.Cols) })
			if err != nil {
				return nil, err
			}
			op.ev.prog = prog
		}
		return op, nil
	case *algebra.Map:
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		return &MkMap{Expr: x.Expr, Input: in, rt: rt}, nil
	case *algebra.Join:
		return p.buildJoin(x, rt)
	case *algebra.Nest:
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		return &MkNest{Groups: x.Groups, Input: in}, nil
	case *algebra.Depend:
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		return &MkDepend{Var: x.Var, Domain: x.Domain, Input: in, rt: rt}, nil
	case *algebra.Distinct:
		// distinct over a partition fan-out fuses into the merge: duplicates
		// are dropped across shard streams as they arrive.
		if u, ok := x.Input.(*algebra.Union); ok && u.Par && len(u.Inputs) > 1 {
			return p.buildScatterGather(u, true, rt)
		}
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		return &MkDistinct{Input: in}, nil
	case *algebra.Flatten:
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		return &MkFlatten{Input: in}, nil
	case *algebra.Agg:
		in, err := p.build(x.Input, rt)
		if err != nil {
			return nil, err
		}
		return &MkAgg{Fn: x.Fn, Input: in}, nil
	default:
		return nil, fmt.Errorf("physical: no implementation rule for %T", n)
	}
}

// buildScatterGather translates a parallel (partition fan-out) union into
// the scatter-gather merge operator, marking the branch execs as gated so
// Run leaves their launch to the operator's concurrency bound.
func (p *Plan) buildScatterGather(u *algebra.Union, distinct bool, rt *Runtime) (Operator, error) {
	branches := make([]Operator, len(u.Inputs))
	branchExecs := make([][]*Exec, len(u.Inputs))
	for i, in := range u.Inputs {
		op, err := p.build(in, rt)
		if err != nil {
			return nil, err
		}
		branches[i] = op
		algebra.Walk(in, func(n algebra.Node) {
			if sub, ok := n.(*algebra.Submit); ok {
				if e := p.Execs[sub]; e != nil {
					p.gated[e] = true
					branchExecs[i] = append(branchExecs[i], e)
				}
			}
		})
	}
	maxPar := 0
	if rt != nil {
		maxPar = rt.MaxFanout
	}
	return &ScatterGather{Branches: branches, BranchExecs: branchExecs, MaxParallel: maxPar, Distinct: distinct}, nil
}

// buildJoin picks hash join for equi-predicates and nested loops otherwise.
func (p *Plan) buildJoin(x *algebra.Join, rt *Runtime) (Operator, error) {
	l, err := p.build(x.L, rt)
	if err != nil {
		return nil, err
	}
	r, err := p.build(x.R, rt)
	if err != nil {
		return nil, err
	}
	if x.Pred != nil {
		lVars := toSet(algebra.EnvVars(x.L))
		rVars := toSet(algebra.EnvVars(x.R))
		if len(lVars) > 0 && len(rVars) > 0 {
			if lk, rk, residual, ok := equiKey(x.Pred, lVars, rVars); ok {
				return &HashJoin{L: l, R: r, LKey: lk, RKey: rk, Residual: residual, rt: rt}, nil
			}
		}
	}
	return &NLJoin{L: l, R: r, Pred: x.Pred, rt: rt}, nil
}

func toSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

// Run executes the plan. All exec calls launch in parallel first (§4);
// the context's deadline bounds them, and a source that fails to answer
// surfaces as an UnavailableError from the draining pass. Execs gated by a
// scatter-gather operator launch under its concurrency bound instead.
func (p *Plan) Run(ctx context.Context) (types.Value, error) {
	for _, e := range p.Execs {
		if p.gated[e] {
			continue
		}
		e.Start(ctx)
	}
	elems, err := Drain(ctx, p.Root)
	if err != nil {
		return nil, err
	}
	if p.Scalar {
		if len(elems) != 1 {
			return nil, fmt.Errorf("physical: scalar plan produced %d values", len(elems))
		}
		return elems[0], nil
	}
	return types.NewBag(elems...), nil
}

// Outcome is the result of one exec call.
type Outcome struct {
	Bag *types.Bag
	Err error
}

// Outcomes waits for every exec call to finish (each respects the context
// deadline it was started with) and returns their results keyed by logical
// submit node. Partial evaluation substitutes the successful ones into the
// logical plan and leaves the rest as the residual query.
func (p *Plan) Outcomes() map[*algebra.Submit]Outcome {
	out := make(map[*algebra.Submit]Outcome, len(p.Execs))
	for sub, e := range p.Execs {
		out[sub] = e.Outcome()
	}
	return out
}
