package physical

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/types"
)

// shardRef builds the ref for one shard of a partitioned extent.
func shardRef(extent, repo string) algebra.ExtentRef {
	return algebra.ExtentRef{
		Extent: extent, Repo: repo, Source: extent, Iface: "Person",
		Attrs: []string{"id", "name", "salary"}, Partition: repo,
	}
}

// shardPlan is the logical partition fan-out: punion of per-shard submits.
func shardPlan(extent string, repos ...string) *algebra.Union {
	inputs := make([]algebra.Node, len(repos))
	for i, r := range repos {
		inputs[i] = &algebra.Submit{Repo: r, Input: &algebra.Get{Ref: shardRef(extent, r)}}
	}
	return &algebra.Union{Inputs: inputs, Par: true}
}

// shardData spreads people rows over repos r0..rN-1.
func shardData(rows map[string]*types.Bag) map[string]algebra.CollectionsMap {
	out := map[string]algebra.CollectionsMap{}
	for repo, bag := range rows {
		out[repo] = algebra.CollectionsMap{"people": bag}
	}
	return out
}

func runPlan(t *testing.T, logical algebra.Node, rt *Runtime) (types.Value, error) {
	t.Helper()
	p, err := Build(logical, rt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return p.Run(ctx)
}

// TestScatterGatherMerge is the table-driven contract of the merge
// operator: the result bag is independent of shard arrival order, keeps
// cross-shard duplicates under bag semantics, and drops them under fused
// distinct.
func TestScatterGatherMerge(t *testing.T) {
	mary := person(1, "Mary", 200)
	sam := person(2, "Sam", 50)
	ann := person(3, "Ann", 5)
	maryDup := person(1, "Mary", 200)

	cases := []struct {
		name     string
		data     map[string]*types.Bag
		latency  map[string]time.Duration
		distinct bool
		want     *types.Bag
	}{
		{
			name: "merge preserves the union bag",
			data: map[string]*types.Bag{
				"r0": types.NewBag(mary),
				"r1": types.NewBag(sam),
				"r2": types.NewBag(ann),
			},
			want: types.NewBag(mary, sam, ann),
		},
		{
			name: "ordering independence: slow first shard",
			data: map[string]*types.Bag{
				"r0": types.NewBag(mary),
				"r1": types.NewBag(sam),
				"r2": types.NewBag(ann),
			},
			latency: map[string]time.Duration{"r0": 80 * time.Millisecond, "r1": 10 * time.Millisecond},
			want:    types.NewBag(mary, sam, ann),
		},
		{
			name: "cross-shard duplicates preserved under bag semantics",
			data: map[string]*types.Bag{
				"r0": types.NewBag(mary),
				"r1": types.NewBag(maryDup, sam),
			},
			want: types.NewBag(mary, mary, sam),
		},
		{
			name: "distinct fused into the merge",
			data: map[string]*types.Bag{
				"r0": types.NewBag(mary, sam),
				"r1": types.NewBag(maryDup, ann),
			},
			distinct: true,
			want:     types.NewBag(mary, sam, ann),
		},
		{
			name: "empty shards contribute nothing",
			data: map[string]*types.Bag{
				"r0": types.NewBag(),
				"r1": types.NewBag(sam),
				"r2": types.NewBag(),
			},
			want: types.NewBag(sam),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			repos := make([]string, 0, len(tc.data))
			for r := range tc.data {
				repos = append(repos, r)
			}
			f := &fixtureRuntime{data: shardData(tc.data), latency: tc.latency}
			var logical algebra.Node = shardPlan("people", repos...)
			if tc.distinct {
				logical = &algebra.Distinct{Input: logical}
			}
			got, err := runPlan(t, logical, f.runtime())
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(tc.want) {
				t.Errorf("got %s, want %s", got, tc.want)
			}
		})
	}
}

// TestScatterGatherBuildsForParUnion checks the implementation rule: a Par
// union becomes a ScatterGather, an ordered union stays a MkUnion.
func TestScatterGatherBuildsForParUnion(t *testing.T) {
	f := &fixtureRuntime{data: shardData(map[string]*types.Bag{"r0": types.NewBag(), "r1": types.NewBag()})}
	par := shardPlan("people", "r0", "r1")
	p, err := Build(par, f.runtime())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Root.(*ScatterGather); !ok {
		t.Errorf("Par union built %T, want *ScatterGather", p.Root)
	}
	ordered := &algebra.Union{Inputs: par.Inputs}
	p, err = Build(ordered, f.runtime())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Root.(*MkUnion); !ok {
		t.Errorf("ordered union built %T, want *MkUnion", p.Root)
	}
	fused := &algebra.Distinct{Input: par}
	p, err = Build(fused, f.runtime())
	if err != nil {
		t.Fatal(err)
	}
	sg, ok := p.Root.(*ScatterGather)
	if !ok || !sg.Distinct {
		t.Errorf("distinct over Par union built %T (distinct fused: %v), want fused *ScatterGather", p.Root, ok && sg.Distinct)
	}
}

// TestScatterGatherOneShardUnavailable: a dead shard degrades the fan-out
// instead of killing it — the data of the answering shards is still
// collected (visible through Outcomes) and the error names only the
// missing partition.
func TestScatterGatherOneShardUnavailable(t *testing.T) {
	mary := person(1, "Mary", 200)
	sam := person(2, "Sam", 50)
	f := &fixtureRuntime{
		data: shardData(map[string]*types.Bag{
			"r0": types.NewBag(mary),
			"r1": types.NewBag(sam),
			"r2": types.NewBag(person(3, "Ann", 5)),
		}),
		down: map[string]bool{"r2": true},
	}
	logical := shardPlan("people", "r0", "r1", "r2")
	p, err := Build(logical, f.runtime())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err = p.Run(ctx)
	var ue *UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("Run err = %v, want UnavailableError", err)
	}
	if ue.Repo != "r2" {
		t.Errorf("UnavailableError.Repo = %q, want the missing partition r2", ue.Repo)
	}
	// The answering shards' outcomes carry their data; only r2 failed.
	for sub, o := range p.Outcomes() {
		switch sub.Repo {
		case "r2":
			if !errors.As(o.Err, &ue) {
				t.Errorf("r2 outcome err = %v, want UnavailableError", o.Err)
			}
		default:
			if o.Err != nil {
				t.Errorf("%s outcome err = %v, want data", sub.Repo, o.Err)
			} else if o.Bag.Len() != 1 {
				t.Errorf("%s outcome = %s, want 1 row", sub.Repo, o.Bag)
			}
		}
	}
}

// TestScatterGatherRealErrorAborts: a live shard answering with a genuine
// error fails the query — it must not degrade into a partial answer.
func TestScatterGatherRealErrorAborts(t *testing.T) {
	boom := errors.New("syntax error at shard")
	rt := &Runtime{}
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		if repo == "r1" {
			return nil, boom
		}
		return types.NewBag(person(1, "Mary", 200)), nil
	}
	_, err := runPlan(t, shardPlan("people", "r0", "r1", "r2"), rt)
	if !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want the shard's real error", err)
	}
	var ue *UnavailableError
	if errors.As(err, &ue) {
		t.Fatalf("real shard error surfaced as UnavailableError: %v", err)
	}
}

// TestScatterGatherRunsShardsConcurrently executes 8 shards whose submits
// all rendezvous at a barrier before answering: the test can only pass if
// every submit is in flight at once. Run under -race this also checks the
// merge path for data races.
func TestScatterGatherRunsShardsConcurrently(t *testing.T) {
	const shards = 8
	repos := make([]string, shards)
	var arrivals sync.WaitGroup
	arrivals.Add(shards)
	release := make(chan struct{})
	go func() {
		arrivals.Wait()
		close(release)
	}()
	rt := &Runtime{}
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		arrivals.Done()
		select {
		case <-release:
		case <-ctx.Done():
			return nil, &UnavailableError{Repo: repo, Err: fmt.Errorf("barrier never filled: shards did not run concurrently")}
		}
		return types.NewBag(types.Str(repo)), nil
	}
	want := make([]types.Value, shards)
	for i := range repos {
		repos[i] = fmt.Sprintf("r%d", i)
		want[i] = types.Str(repos[i])
	}
	got, err := runPlan(t, shardPlan("people", repos...), rt)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(types.NewBag(want...)) {
		t.Errorf("got %s", got)
	}
}

// TestScatterGatherBoundedConcurrency: with MaxFanout = 2, no more than two
// shard submits are ever in flight, yet all shards are eventually drained.
func TestScatterGatherBoundedConcurrency(t *testing.T) {
	const shards = 8
	var inFlight, peak atomic.Int64
	rt := &Runtime{MaxFanout: 2}
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		return types.NewBag(types.Str(repo)), nil
	}
	repos := make([]string, shards)
	for i := range repos {
		repos[i] = fmt.Sprintf("r%d", i)
	}
	got, err := runPlan(t, shardPlan("people", repos...), rt)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*types.Bag).Len() != shards {
		t.Errorf("drained %d shards, want %d", got.(*types.Bag).Len(), shards)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds MaxFanout 2", p)
	}
}

// TestScatterGatherCloseEarly: closing the operator mid-stream must not
// deadlock the branch goroutines, and unattempted execs must count as
// unavailable so partial evaluation keeps them in the residual.
func TestScatterGatherCloseEarly(t *testing.T) {
	const shards = 4
	rt := &Runtime{MaxFanout: 1}
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		return types.NewBag(types.Str(repo)), nil
	}
	repos := make([]string, shards)
	for i := range repos {
		repos[i] = fmt.Sprintf("r%d", i)
	}
	p, err := Build(shardPlan("people", repos...), rt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := p.Root.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Root.NextBatch(types.NewBatch(0)); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if err := p.Root.Close(); err != nil {
		t.Fatal(err)
	}
	// Outcomes must not hang and must classify whatever never ran as
	// unavailable rather than erroring.
	for sub, o := range p.Outcomes() {
		if o.Err != nil {
			var ue *UnavailableError
			if !errors.As(o.Err, &ue) {
				t.Errorf("%s outcome err = %v, want nil or UnavailableError", sub.Repo, o.Err)
			}
		}
	}
}
