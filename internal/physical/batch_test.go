package physical

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/types"
)

// intBag builds a bag of 0..n-1 wrapped as {x: i} tuples.
func intBag(n int) *types.Bag {
	rows := make([]types.Value, n)
	for i := range rows {
		rows[i] = types.NewStruct(types.Field{Name: "x", Value: types.Int(int64(i))})
	}
	return types.NewBag(rows...)
}

// drainWithCap runs an operator to exhaustion using a caller batch of the
// given capacity — exercising partial-batch and resume paths that the
// default capacity never hits.
func drainWithCap(t *testing.T, op Operator, capacity int) []types.Value {
	t.Helper()
	if err := op.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	b := types.NewBatch(capacity)
	var out []types.Value
	for {
		err := op.NextBatch(b)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			t.Fatal("NextBatch returned nil with an empty batch")
		}
		if b.Len() > capacity {
			t.Fatalf("NextBatch produced %d values into a capacity-%d batch", b.Len(), capacity)
		}
		out = append(out, b.Values()...)
	}
}

// TestBatchBoundaries runs the element-wise operator stack across inputs
// that straddle batch boundaries (sizes around BatchSize) and output
// capacities down to one — every operator must produce exactly the
// tuple-at-a-time result regardless of batch geometry.
func TestBatchBoundaries(t *testing.T) {
	rt := &Runtime{}
	pred := parseExpr(t, `x mod 3 = 0`)
	for _, n := range []int{0, 1, 5, types.BatchSize - 1, types.BatchSize, types.BatchSize + 1, 2*types.BatchSize + 7} {
		for _, capacity := range []int{1, 3, types.BatchSize} {
			op := &MkMap{
				Expr: parseExpr(t, `x * 2`),
				Input: &MkSelect{
					Pred:  pred,
					Input: &ConstScan{Bag: intBag(n)},
					rt:    rt,
				},
				rt: rt,
			}
			got := drainWithCap(t, op, capacity)
			want := 0
			for i := 0; i < n; i += 3 {
				want++
			}
			if len(got) != want {
				t.Fatalf("n=%d cap=%d: %d rows, want %d", n, capacity, len(got), want)
			}
		}
	}
}

// TestBatchJoinsResumeAcrossCalls: joins whose output exceeds the batch
// capacity must carry their scan position between NextBatch calls without
// losing or duplicating pairs.
func TestBatchJoinsResumeAcrossCalls(t *testing.T) {
	rt := &Runtime{}
	mkSide := func(varName string, n int) *types.Bag {
		rows := make([]types.Value, n)
		for i := range rows {
			rows[i] = types.NewStruct(types.Field{Name: varName, Value: types.NewStruct(
				types.Field{Name: "id", Value: types.Int(int64(i % 4))},
			)})
		}
		return types.NewBag(rows...)
	}
	const n = 40
	t.Run("hash", func(t *testing.T) {
		op := &HashJoin{
			L:    &ConstScan{Bag: mkSide("x", n)},
			R:    &ConstScan{Bag: mkSide("y", n)},
			LKey: parseExpr(t, `x.id`), RKey: parseExpr(t, `y.id`),
			rt: rt,
		}
		got := drainWithCap(t, op, 7)
		if len(got) != n*n/4 {
			t.Errorf("hash join rows = %d, want %d", len(got), n*n/4)
		}
	})
	t.Run("nested-loop", func(t *testing.T) {
		op := &NLJoin{
			L:    &ConstScan{Bag: mkSide("x", n)},
			R:    &ConstScan{Bag: mkSide("y", n)},
			Pred: parseExpr(t, `x.id = y.id`),
			rt:   rt,
		}
		got := drainWithCap(t, op, 7)
		if len(got) != n*n/4 {
			t.Errorf("nested-loop rows = %d, want %d", len(got), n*n/4)
		}
	})
	t.Run("cross-product", func(t *testing.T) {
		op := &NLJoin{
			L: &ConstScan{Bag: mkSide("x", 6)},
			R: &ConstScan{Bag: mkSide("y", 5)},
		}
		got := drainWithCap(t, op, 4)
		if len(got) != 30 {
			t.Errorf("cross product rows = %d, want 30", len(got))
		}
	})
}

// TestScatterGatherBatchedMerge streams many values through many branches
// under small consumer batches, with and without fused distinct. Run under
// -race this checks the batch hand-off and free-list recycling: a branch
// must never reuse a batch the consumer still reads.
func TestScatterGatherBatchedMerge(t *testing.T) {
	const shards = 8
	const perShard = 500
	rt := &Runtime{MaxFanout: 3}
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		rows := make([]types.Value, perShard)
		for i := range rows {
			// Half the values collide across shards (the distinct case),
			// half are unique per shard.
			var v types.Value
			if i%2 == 0 {
				v = types.Int(int64(i))
			} else {
				v = types.Str(fmt.Sprintf("%s-%d", repo, i))
			}
			rows[i] = v
		}
		return types.NewBag(rows...), nil
	}
	repos := make([]string, shards)
	for i := range repos {
		repos[i] = fmt.Sprintf("r%d", i)
	}
	for _, distinct := range []bool{false, true} {
		var logical algebra.Node = shardPlan("people", repos...)
		if distinct {
			logical = &algebra.Distinct{Input: logical}
		}
		p, err := Build(logical, rt)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		got, err := Drain(ctx, p.Root)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		want := shards * perShard
		if distinct {
			// perShard/2 shared ints appear once; each shard's perShard/2
			// strings are unique.
			want = perShard/2 + shards*perShard/2
		}
		if len(got) != want {
			t.Errorf("distinct=%v: %d values, want %d", distinct, len(got), want)
		}
	}
}

// TestScatterGatherSmallConsumerBatch: incoming branch batches larger than
// the consumer's capacity must spill across calls losslessly.
func TestScatterGatherSmallConsumerBatch(t *testing.T) {
	rt := &Runtime{}
	rt.Submit = func(ctx context.Context, repo string, expr algebra.Node) (*types.Bag, error) {
		rows := make([]types.Value, 100)
		for i := range rows {
			rows[i] = types.Str(fmt.Sprintf("%s-%d", repo, i))
		}
		return types.NewBag(rows...), nil
	}
	p, err := Build(shardPlan("people", "r0", "r1"), rt)
	if err != nil {
		t.Fatal(err)
	}
	sg, ok := p.Root.(*ScatterGather)
	if !ok {
		t.Fatalf("root is %T", p.Root)
	}
	if err := sg.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	b := types.NewBatch(3)
	total := 0
	for {
		err := sg.NextBatch(b)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 || b.Len() > 3 {
			t.Fatalf("batch len %d with capacity 3", b.Len())
		}
		total += b.Len()
	}
	if total != 200 {
		t.Errorf("merged %d values, want 200", total)
	}
}
