package types

import (
	"testing"
	"testing/quick"
)

func TestWireRoundTripExamples(t *testing.T) {
	values := []Value{
		Null{},
		Bool(true),
		Int(-42),
		Float(2.5),
		Str(`quoted "text"`),
		NewStruct(Field{"name", Str("Mary")}, Field{"salary", Int(200)}),
		NewBag(Str("Mary"), Str("Sam"), Str("Mary")),
		NewList(Int(1), Int(2), Int(3)),
		NewSet(Int(1), Int(2)),
		NewBag(NewStruct(Field{"inner", NewBag(Int(1))})),
	}
	for _, v := range values {
		data, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %s: %v", v, err)
		}
		got, err := DecodeValue(data)
		if err != nil {
			t.Fatalf("decode %s: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip: got %s, want %s", got, v)
		}
	}
}

func TestWireKindsPreserved(t *testing.T) {
	// Plain JSON would conflate these; the tagged encoding must not.
	data, err := EncodeValue(Int(2))
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeValue(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindInt {
		t.Errorf("Int decoded as %s", v.Kind())
	}

	data, err = EncodeValue(Float(2))
	if err != nil {
		t.Fatal(err)
	}
	v, err = DecodeValue(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindFloat {
		t.Errorf("Float decoded as %s", v.Kind())
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		[]byte(`{`),
		[]byte(`{"k":"mystery"}`),
		[]byte(`{"k":"int"}`),
		[]byte(`{"k":"bool"}`),
		[]byte(`{"k":"float"}`),
		[]byte(`{"k":"str"}`),
		[]byte(`{"k":"struct","n":["a"],"e":[]}`),
	}
	for _, data := range bad {
		if _, err := DecodeValue(data); err == nil {
			t.Errorf("DecodeValue(%s) should fail", data)
		}
	}
}

// Property: encode/decode is the identity on arbitrary values.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(g genValue) bool {
		data, err := EncodeValue(g.V)
		if err != nil {
			return false
		}
		got, err := DecodeValue(data)
		if err != nil {
			return false
		}
		return got.Equal(g.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
