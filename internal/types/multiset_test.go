package types

import (
	"testing"
	"testing/quick"
)

func TestBagUnion(t *testing.T) {
	a := NewBag(Str("Mary"))
	b := NewBag(Str("Sam"), Str("Mary"))
	u := BagUnion(a, b)
	if u.Len() != 3 {
		t.Fatalf("union len = %d, want 3", u.Len())
	}
	if got := Multiplicity(u, Str("Mary")); got != 2 {
		t.Errorf("multiplicity(Mary) = %d, want 2 (bag union preserves duplicates)", got)
	}
}

func TestBagUnionEmpty(t *testing.T) {
	if got := BagUnion().Len(); got != 0 {
		t.Errorf("empty union len = %d", got)
	}
	if got := BagUnion(NewBag(), NewBag(Int(1))).Len(); got != 1 {
		t.Errorf("union with empty bag len = %d, want 1", got)
	}
}

func TestBagDistinct(t *testing.T) {
	b := NewBag(Int(1), Int(1), Int(2), Float(2))
	d := BagDistinct(b)
	if d.Len() != 2 {
		t.Errorf("distinct len = %d, want 2 (Int(2) and Float(2) are model-equal)", d.Len())
	}
}

func TestFlatten(t *testing.T) {
	b := NewBag(NewBag(Int(1), Int(2)), NewList(Int(3)), NewSet(Int(4)))
	f, err := Flatten(b)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(NewBag(Int(1), Int(2), Int(3), Int(4))) {
		t.Errorf("flatten = %s", f)
	}
	if _, err := Flatten(NewBag(Int(1))); err == nil {
		t.Errorf("flatten of non-collection elements should fail")
	}
}

func TestBagMapFilter(t *testing.T) {
	b := NewBag(Int(1), Int(2), Int(3))
	doubled, err := BagMap(b, func(v Value) (Value, error) { return Int(v.(Int) * 2), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !doubled.Equal(NewBag(Int(2), Int(4), Int(6))) {
		t.Errorf("map = %s", doubled)
	}
	big, err := BagFilter(b, func(v Value) (bool, error) { return v.(Int) > 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !big.Equal(NewBag(Int(2), Int(3))) {
		t.Errorf("filter = %s", big)
	}
}

// Property: bag union is commutative under multiset equality (§1.3: the
// union of two bags is a bag).
func TestBagUnionCommutativeProperty(t *testing.T) {
	f := func(a, b genValue) bool {
		ba := asBag(a.V)
		bb := asBag(b.V)
		return BagUnion(ba, bb).Equal(BagUnion(bb, ba))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: bag union is associative under multiset equality.
func TestBagUnionAssociativeProperty(t *testing.T) {
	f := func(a, b, c genValue) bool {
		ba, bb, bc := asBag(a.V), asBag(b.V), asBag(c.V)
		return BagUnion(BagUnion(ba, bb), bc).Equal(BagUnion(ba, BagUnion(bb, bc)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: |a ∪ b| = |a| + |b| for bags.
func TestBagUnionCardinalityProperty(t *testing.T) {
	f := func(a, b genValue) bool {
		ba, bb := asBag(a.V), asBag(b.V)
		return BagUnion(ba, bb).Len() == ba.Len()+bb.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// asBag wraps any generated value into a bag so the union properties can
// reuse the generic value generator.
func asBag(v Value) *Bag {
	if b, ok := v.(*Bag); ok {
		return b
	}
	return NewBag(v)
}
