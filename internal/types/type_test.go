package types

import (
	"strings"
	"testing"
)

// paperSchema builds the Person/Student hierarchy from paper §2.
func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	person := &Interface{
		Name:       "Person",
		ExtentName: "person",
		Attrs: []Attribute{
			{Name: "name", Type: ScalarAttr(TString)},
			{Name: "salary", Type: ScalarAttr(TInt)},
		},
	}
	if err := s.Define(person); err != nil {
		t.Fatal(err)
	}
	student := &Interface{Name: "Student", Super: "Person"}
	if err := s.Define(student); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDefine(t *testing.T) {
	s := paperSchema(t)
	if _, ok := s.Lookup("Person"); !ok {
		t.Fatal("Person not found")
	}
	if err := s.Define(&Interface{Name: "Person"}); err == nil {
		t.Error("redefinition should fail")
	}
	if err := s.Define(&Interface{Name: "Ghost", Super: "Nobody"}); err == nil {
		t.Error("unknown supertype should fail")
	}
	if err := s.Define(&Interface{}); err == nil {
		t.Error("empty name should fail")
	}
}

func TestSubtyping(t *testing.T) {
	s := paperSchema(t)
	if !s.IsSubtype("Student", "Person") {
		t.Error("Student should be a subtype of Person")
	}
	if !s.IsSubtype("Person", "Person") {
		t.Error("subtyping is reflexive")
	}
	if s.IsSubtype("Person", "Student") {
		t.Error("Person is not a subtype of Student")
	}
	subs := s.Subtypes("Person")
	if len(subs) != 2 || subs[0] != "Person" || subs[1] != "Student" {
		t.Errorf("Subtypes(Person) = %v", subs)
	}
}

func TestAttributeInheritance(t *testing.T) {
	s := paperSchema(t)
	a, ok := s.AttrOf("Student", "salary")
	if !ok {
		t.Fatal("Student should inherit salary from Person")
	}
	if a.Type.Kind != TInt {
		t.Errorf("salary type = %v", a.Type)
	}
	attrs := s.AllAttrs("Student")
	if len(attrs) != 2 {
		t.Errorf("AllAttrs(Student) = %v, want the 2 inherited attributes", attrs)
	}
	if _, ok := s.AttrOf("Student", "gpa"); ok {
		t.Error("gpa should not resolve")
	}
}

func TestConformance(t *testing.T) {
	s := paperSchema(t)
	mary := NewStruct(Field{"name", Str("Mary")}, Field{"salary", Int(200)})
	if err := s.CheckConforms(mary, "Person"); err != nil {
		t.Errorf("Mary should conform to Person: %v", err)
	}
	// Extra fields are fine: sources may expose more than the mediator models.
	rich := NewStruct(Field{"name", Str("Ann")}, Field{"salary", Int(5)}, Field{"bonus", Int(9)})
	if err := s.CheckConforms(rich, "Person"); err != nil {
		t.Errorf("extra fields should be tolerated: %v", err)
	}
	// Missing attribute fails.
	anon := NewStruct(Field{"salary", Int(1)})
	if err := s.CheckConforms(anon, "Person"); err == nil {
		t.Error("missing name should fail conformance")
	} else if !strings.Contains(err.Error(), "name") {
		t.Errorf("error should mention the missing attribute: %v", err)
	}
	// Wrong kind fails.
	odd := NewStruct(Field{"name", Int(3)}, Field{"salary", Int(1)})
	if err := s.CheckConforms(odd, "Person"); err == nil {
		t.Error("string attribute holding an int should fail")
	}
	// Non-struct fails.
	if err := s.CheckConforms(Int(3), "Person"); err == nil {
		t.Error("non-struct should fail conformance")
	}
	// Nulls conform to any attribute type.
	ghost := NewStruct(Field{"name", Null{}}, Field{"salary", Null{}})
	if err := s.CheckConforms(ghost, "Person"); err != nil {
		t.Errorf("null attributes should conform: %v", err)
	}
}

func TestConformanceCollections(t *testing.T) {
	s := NewSchema()
	elem := ScalarAttr(TInt)
	iface := &Interface{
		Name: "Series",
		Attrs: []Attribute{
			{Name: "points", Type: AttrType{Kind: TBagOf, Elem: &elem}},
		},
	}
	if err := s.Define(iface); err != nil {
		t.Fatal(err)
	}
	good := NewStruct(Field{"points", NewBag(Int(1), Int(2))})
	if err := s.CheckConforms(good, "Series"); err != nil {
		t.Errorf("bag of ints should conform: %v", err)
	}
	bad := NewStruct(Field{"points", NewBag(Str("x"))})
	if err := s.CheckConforms(bad, "Series"); err == nil {
		t.Error("bag of strings should not conform to Bag<Short>")
	}
}

func TestAttrTypeString(t *testing.T) {
	elem := ScalarAttr(TString)
	tests := []struct {
		t    AttrType
		want string
	}{
		{ScalarAttr(TString), "String"},
		{ScalarAttr(TInt), "Short"},
		{ScalarAttr(TFloat), "Float"},
		{ScalarAttr(TBool), "Boolean"},
		{AttrType{Kind: TBagOf, Elem: &elem}, "Bag<String>"},
		{AttrType{Kind: TInterface, Iface: "Person"}, "Person"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String() = %s, want %s", got, tt.want)
		}
	}
}

func TestInterfaceString(t *testing.T) {
	i := &Interface{Name: "Student", Super: "Person", ExtentName: "student"}
	want := "interface Student:Person (extent student)"
	if got := i.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
