package types

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomValue generates an arbitrary value of bounded depth for property
// tests. It is shared by the json and multiset tests.
func randomValue(r *rand.Rand, depth int) Value {
	max := 9
	if depth <= 0 {
		max = 4 // scalars only at the leaves
	}
	switch r.Intn(max) {
	case 0:
		return Null{}
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63n(2000) - 1000)
	case 3:
		return Str(randomName(r))
	case 4:
		return Float(float64(r.Int63n(1000)) + 0.5)
	case 5:
		n := r.Intn(4)
		fields := make([]Field, 0, n)
		for i := 0; i < n; i++ {
			fields = append(fields, Field{Name: randomName(r), Value: randomValue(r, depth-1)})
		}
		return NewStruct(fields...)
	case 6:
		return NewBag(randomValues(r, depth-1)...)
	case 7:
		return NewList(randomValues(r, depth-1)...)
	default:
		return NewSet(randomValues(r, depth-1)...)
	}
}

func randomValues(r *rand.Rand, depth int) []Value {
	n := r.Intn(4)
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, randomValue(r, depth))
	}
	return out
}

func randomName(r *rand.Rand) string {
	letters := "abcdefg"
	n := 1 + r.Intn(5)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(letters[r.Intn(len(letters))])
	}
	return b.String()
}

// genValue adapts randomValue to testing/quick.
type genValue struct{ V Value }

func (genValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genValue{V: randomValue(r, 3)})
}

func TestScalarEquality(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"int equal", Int(5), Int(5), true},
		{"int not equal", Int(5), Int(6), false},
		{"int float cross", Int(5), Float(5), true},
		{"float int cross", Float(2.5), Int(2), false},
		{"string equal", Str("Mary"), Str("Mary"), true},
		{"string case", Str("Mary"), Str("mary"), false},
		{"bool", Bool(true), Bool(true), true},
		{"null", Null{}, Null{}, true},
		{"null vs int", Null{}, Int(0), false},
		{"string vs int", Str("5"), Int(5), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("(%s).Equal(%s) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("symmetry: (%s).Equal(%s) = %v, want %v", tt.b, tt.a, got, tt.want)
			}
		})
	}
}

func TestBagMultisetEquality(t *testing.T) {
	a := NewBag(Str("Mary"), Str("Sam"), Str("Mary"))
	b := NewBag(Str("Sam"), Str("Mary"), Str("Mary"))
	c := NewBag(Str("Mary"), Str("Sam"))
	d := NewBag(Str("Mary"), Str("Sam"), Str("Sam"))

	if !a.Equal(b) {
		t.Errorf("bags with same multiplicities in different order should be equal")
	}
	if a.Equal(c) {
		t.Errorf("bags with different cardinality should differ")
	}
	if a.Equal(d) {
		t.Errorf("bags with different multiplicities should differ")
	}
}

func TestSetSemantics(t *testing.T) {
	s := NewSet(Int(1), Int(2), Int(1), Float(2))
	if s.Len() != 2 {
		t.Fatalf("set dedup: len = %d, want 2 (Int(1), Int(2)~Float(2))", s.Len())
	}
	if !s.Contains(Float(1)) {
		t.Errorf("set should contain Float(1) via numeric equality")
	}
	if !s.Equal(NewSet(Int(2), Int(1))) {
		t.Errorf("set equality should ignore order")
	}
}

func TestListPositionalEquality(t *testing.T) {
	a := NewList(Int(1), Int(2))
	b := NewList(Int(2), Int(1))
	if a.Equal(b) {
		t.Errorf("lists are ordered; reordering must break equality")
	}
	if !a.Equal(NewList(Int(1), Int(2))) {
		t.Errorf("identical lists should be equal")
	}
}

func TestStructFieldAccess(t *testing.T) {
	s := NewStruct(Field{"name", Str("Mary")}, Field{"salary", Int(200)})
	v, ok := s.Get("salary")
	if !ok || !v.Equal(Int(200)) {
		t.Fatalf("Get(salary) = %v, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Errorf("Get(missing) should fail")
	}
	if got := s.String(); got != `struct(name: "Mary", salary: 200)` {
		t.Errorf("String() = %s", got)
	}
}

func TestStructDuplicateFieldKeepsLast(t *testing.T) {
	s := NewStruct(Field{"a", Int(1)}, Field{"a", Int(2)})
	if s.Len() != 1 {
		t.Fatalf("duplicate field collapsed: len = %d", s.Len())
	}
	v, _ := s.Get("a")
	if !v.Equal(Int(2)) {
		t.Errorf("duplicate field should keep last value, got %s", v)
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b    Value
		want    int
		wantErr bool
	}{
		{Int(1), Int(2), -1, false},
		{Int(2), Int(2), 0, false},
		{Int(3), Float(2.5), 1, false},
		{Float(1.5), Int(2), -1, false},
		{Str("a"), Str("b"), -1, false},
		{Bool(false), Bool(true), -1, false},
		{Str("a"), Int(1), 0, true},
		{NewBag(), NewBag(), 0, true},
	}
	for _, tt := range tests {
		got, err := Compare(tt.a, tt.b)
		if (err != nil) != tt.wantErr {
			t.Errorf("Compare(%s, %s) error = %v, wantErr %v", tt.a, tt.b, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestTruthy(t *testing.T) {
	if v, err := Truthy(Bool(true)); err != nil || !v {
		t.Errorf("Truthy(true) = %v, %v", v, err)
	}
	if _, err := Truthy(Int(1)); err == nil {
		t.Errorf("Truthy(Int) should error: predicates are strictly boolean")
	}
}

func TestValueStringsAreDeterministic(t *testing.T) {
	a := NewBag(Str("Sam"), Str("Mary"))
	b := NewBag(Str("Mary"), Str("Sam"))
	if a.String() != b.String() {
		t.Errorf("equal bags should print identically: %s vs %s", a, b)
	}
	want := `bag("Mary", "Sam")`
	if a.String() != want {
		t.Errorf("bag printing: got %s, want %s", a, want)
	}
}

// Property: Equal is reflexive for arbitrary values.
func TestEqualReflexiveProperty(t *testing.T) {
	f := func(g genValue) bool { return g.V.Equal(g.V) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CanonicalKey agrees with Equal (equal values share keys, and
// values sharing keys are equal).
func TestCanonicalKeyAgreesWithEqualProperty(t *testing.T) {
	f := func(a, b genValue) bool {
		return (CanonicalKey(a.V) == CanonicalKey(b.V)) == a.V.Equal(b.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Equal is symmetric.
func TestEqualSymmetricProperty(t *testing.T) {
	f := func(a, b genValue) bool {
		return a.V.Equal(b.V) == b.V.Equal(a.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric on comparable scalars.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		ab, err1 := Compare(x, y)
		ba, err2 := Compare(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive on mixed numerics.
func TestCompareTransitiveProperty(t *testing.T) {
	toVal := func(n int16, float bool) Value {
		if float {
			return Float(float64(n)) // exact in float64: transitivity is testable
		}
		return Int(int64(n))
	}
	f := func(a, b, c int16, fa, fb, fc bool) bool {
		x, y, z := toVal(a, fa), toVal(b, fb), toVal(c, fc)
		xy, _ := Compare(x, y)
		yz, _ := Compare(y, z)
		xz, _ := Compare(x, z)
		if xy <= 0 && yz <= 0 && xz > 0 {
			return false
		}
		if xy >= 0 && yz >= 0 && xz < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Compare agrees with Equal on numerics (Compare==0 iff Equal).
func TestCompareAgreesWithEqualProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(int64(a)), Float(float64(b))
		c, err := Compare(x, y)
		if err != nil {
			return false
		}
		return (c == 0) == x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
