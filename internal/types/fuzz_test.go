package types

import "testing"

// FuzzDecodeValue checks that the wire decoder never panics on arbitrary
// bytes and that anything it accepts re-encodes and decodes to an equal
// value.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range []Value{
		Int(5),
		Str("x"),
		NewBag(NewStruct(Field{"a", Float(1.5)})),
		NewSet(Bool(true), Null{}),
	} {
		data, err := EncodeValue(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"k":"int"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"k":"struct","n":["a","b"],"e":[{"k":"int","i":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeValue(data)
		if err != nil {
			return
		}
		re, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("decoded value %s does not re-encode: %v", v, err)
		}
		back, err := DecodeValue(re)
		if err != nil {
			t.Fatalf("re-encoded value does not decode: %v", err)
		}
		if !back.Equal(v) {
			t.Fatalf("codec round trip mismatch: %s vs %s", v, back)
		}
	})
}
