package types

import (
	"fmt"
	"strings"
)

// TypeKind classifies ODL attribute types.
type TypeKind uint8

// Attribute type kinds. The scalar kinds mirror the ODL spellings used in
// the paper: String, Short (and Long), Float (and Double), Boolean.
const (
	TString TypeKind = iota + 1
	TInt
	TFloat
	TBool
	TBagOf
	TListOf
	TSetOf
	TInterface
	TAny // used where the model does not constrain the attribute
)

// AttrType is the type of an ODL attribute. Collection kinds carry an Elem;
// TInterface carries the interface name (resolved against a Schema).
type AttrType struct {
	Kind  TypeKind
	Elem  *AttrType // element type for TBagOf/TListOf/TSetOf
	Iface string    // interface name for TInterface
}

// String renders the type in ODL syntax.
func (t AttrType) String() string {
	switch t.Kind {
	case TString:
		return "String"
	case TInt:
		return "Short"
	case TFloat:
		return "Float"
	case TBool:
		return "Boolean"
	case TBagOf:
		return "Bag<" + t.Elem.String() + ">"
	case TListOf:
		return "List<" + t.Elem.String() + ">"
	case TSetOf:
		return "Set<" + t.Elem.String() + ">"
	case TInterface:
		return t.Iface
	case TAny:
		return "Any"
	default:
		return fmt.Sprintf("type(%d)", uint8(t.Kind))
	}
}

// ScalarAttr constructs a scalar attribute type.
func ScalarAttr(k TypeKind) AttrType { return AttrType{Kind: k} }

// Attribute is one attribute of an ODL interface signature.
type Attribute struct {
	Name string
	Type AttrType
}

// Interface is an ODL interface (a type signature for objects, paper §2).
// Super is the name of the supertype, empty for root interfaces.
// ExtentName is the implicit extent declared in the interface header
// ("interface Person (extent person) {...}"), empty when none was declared.
type Interface struct {
	Name       string
	Super      string
	ExtentName string
	Attrs      []Attribute
}

// Attr returns the named attribute, searching this interface only (use
// Schema.AttrOf to search the supertype chain).
func (i *Interface) Attr(name string) (Attribute, bool) {
	for _, a := range i.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// String renders the interface header in ODL syntax.
func (i *Interface) String() string {
	var b strings.Builder
	b.WriteString("interface ")
	b.WriteString(i.Name)
	if i.Super != "" {
		b.WriteString(":")
		b.WriteString(i.Super)
	}
	if i.ExtentName != "" {
		fmt.Fprintf(&b, " (extent %s)", i.ExtentName)
	}
	return b.String()
}

// Schema is a set of interfaces closed under supertype references. It is the
// type-level half of the mediator's internal database.
type Schema struct {
	ifaces map[string]*Interface
	order  []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{ifaces: make(map[string]*Interface)}
}

// Define adds an interface. The supertype, if named, must already exist.
// Redefining an existing interface is an error (ODL definitions are
// declarations, not updates).
func (s *Schema) Define(i *Interface) error {
	if i.Name == "" {
		return fmt.Errorf("interface with empty name")
	}
	if _, exists := s.ifaces[i.Name]; exists {
		return fmt.Errorf("interface %s already defined", i.Name)
	}
	if i.Super != "" {
		if _, ok := s.ifaces[i.Super]; !ok {
			return fmt.Errorf("interface %s: unknown supertype %s", i.Name, i.Super)
		}
	}
	s.ifaces[i.Name] = i
	s.order = append(s.order, i.Name)
	return nil
}

// Lookup returns the named interface.
func (s *Schema) Lookup(name string) (*Interface, bool) {
	i, ok := s.ifaces[name]
	return i, ok
}

// Interfaces returns all interfaces in definition order.
func (s *Schema) Interfaces() []*Interface {
	out := make([]*Interface, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.ifaces[n])
	}
	return out
}

// IsSubtype reports whether sub equals sup or transitively names sup as a
// supertype.
func (s *Schema) IsSubtype(sub, sup string) bool {
	for name := sub; name != ""; {
		if name == sup {
			return true
		}
		i, ok := s.ifaces[name]
		if !ok {
			return false
		}
		name = i.Super
	}
	return false
}

// Subtypes returns sup and every interface that is a (transitive) subtype of
// it, in definition order. This backs the paper's T* syntax (§2.2.1).
func (s *Schema) Subtypes(sup string) []string {
	var out []string
	for _, name := range s.order {
		if s.IsSubtype(name, sup) {
			out = append(out, name)
		}
	}
	return out
}

// AttrOf resolves an attribute on an interface, walking the supertype chain
// (subtypes inherit attributes, §2.2.1).
func (s *Schema) AttrOf(iface, attr string) (Attribute, bool) {
	for name := iface; name != ""; {
		i, ok := s.ifaces[name]
		if !ok {
			return Attribute{}, false
		}
		if a, ok := i.Attr(attr); ok {
			return a, true
		}
		name = i.Super
	}
	return Attribute{}, false
}

// AllAttrs returns the attributes visible on iface including inherited ones,
// supertype attributes first.
func (s *Schema) AllAttrs(iface string) []Attribute {
	var chain []*Interface
	for name := iface; name != ""; {
		i, ok := s.ifaces[name]
		if !ok {
			break
		}
		chain = append(chain, i)
		name = i.Super
	}
	var out []Attribute
	for k := len(chain) - 1; k >= 0; k-- {
		out = append(out, chain[k].Attrs...)
	}
	return out
}

// ConformanceError reports why a value does not conform to an expected type.
// Wrappers raise it at run time when a data source's objects do not match
// the mediator type (paper §2.1: "the wrapper checks that these types are
// indeed the same ... a run-time error will occur").
type ConformanceError struct {
	Expected string // type description
	Got      Value
	Detail   string
}

// Error implements the error interface.
func (e *ConformanceError) Error() string {
	return fmt.Sprintf("type mismatch: expected %s, got %s (%s)", e.Expected, e.Got.Kind(), e.Detail)
}

// CheckConforms verifies that v is a struct carrying every attribute of the
// interface (including inherited attributes) with a conforming kind. Extra
// fields are permitted: a data source may expose more than the mediator
// models.
func (s *Schema) CheckConforms(v Value, iface string) error {
	st, ok := v.(*Struct)
	if !ok {
		return &ConformanceError{Expected: iface, Got: v, Detail: "not a struct"}
	}
	for _, a := range s.AllAttrs(iface) {
		fv, ok := st.Get(a.Name)
		if !ok {
			return &ConformanceError{Expected: iface, Got: v, Detail: "missing attribute " + a.Name}
		}
		if err := checkAttrKind(fv, a.Type); err != nil {
			return &ConformanceError{Expected: iface, Got: v, Detail: fmt.Sprintf("attribute %s: %v", a.Name, err)}
		}
	}
	return nil
}

func checkAttrKind(v Value, t AttrType) error {
	if v.Kind() == KindNull || t.Kind == TAny {
		return nil // nulls conform to every attribute type
	}
	switch t.Kind {
	case TString:
		if v.Kind() != KindString {
			return fmt.Errorf("want String, got %s", v.Kind())
		}
	case TInt:
		if v.Kind() != KindInt {
			return fmt.Errorf("want Short, got %s", v.Kind())
		}
	case TFloat:
		if v.Kind() != KindFloat && v.Kind() != KindInt {
			return fmt.Errorf("want Float, got %s", v.Kind())
		}
	case TBool:
		if v.Kind() != KindBool {
			return fmt.Errorf("want Boolean, got %s", v.Kind())
		}
	case TBagOf, TListOf, TSetOf:
		elems, err := Elements(v)
		if err != nil {
			return err
		}
		for _, e := range elems {
			if err := checkAttrKind(e, *t.Elem); err != nil {
				return err
			}
		}
	case TInterface:
		if v.Kind() != KindStruct {
			return fmt.Errorf("want %s object, got %s", t.Iface, v.Kind())
		}
	}
	return nil
}
