package types

import (
	"encoding/json"
	"fmt"
)

// Wire encoding of values. Components in Figure 1 exchange queries and
// answers over the network; this file defines the tagged JSON encoding both
// for answers (values) travelling mediator-ward and for tuples returned by
// data sources. The encoding is self-describing so that kind information
// survives the round trip (plain JSON would collapse Int/Float and has no
// bag/set/list distinction).

type wireValue struct {
	K string            `json:"k"`
	B *bool             `json:"b,omitempty"`
	I *int64            `json:"i,omitempty"`
	F *float64          `json:"f,omitempty"`
	S *string           `json:"s,omitempty"`
	N []string          `json:"n,omitempty"` // struct field names
	E []json.RawMessage `json:"e,omitempty"` // struct field values / collection elements
}

// EncodeValue serializes a value into the tagged JSON wire form.
func EncodeValue(v Value) ([]byte, error) {
	w, err := toWire(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// DecodeValue parses the tagged JSON wire form produced by EncodeValue.
func DecodeValue(data []byte) (Value, error) {
	var w wireValue
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("decode value: %w", err)
	}
	return fromWire(&w)
}

func toWire(v Value) (*wireValue, error) {
	switch x := v.(type) {
	case Null:
		return &wireValue{K: "null"}, nil
	case Bool:
		b := bool(x)
		return &wireValue{K: "bool", B: &b}, nil
	case Int:
		i := int64(x)
		return &wireValue{K: "int", I: &i}, nil
	case Float:
		f := float64(x)
		return &wireValue{K: "float", F: &f}, nil
	case Str:
		s := string(x)
		return &wireValue{K: "str", S: &s}, nil
	case *Struct:
		w := &wireValue{K: "struct"}
		for _, f := range x.Fields() {
			raw, err := EncodeValue(f.Value)
			if err != nil {
				return nil, err
			}
			w.N = append(w.N, f.Name)
			w.E = append(w.E, raw)
		}
		return w, nil
	case *Bag:
		return collectionToWire("bag", x.Elems())
	case *List:
		return collectionToWire("list", x.Elems())
	case *Set:
		return collectionToWire("set", x.Elems())
	default:
		return nil, fmt.Errorf("encode: unsupported value %T", v)
	}
}

func collectionToWire(kind string, elems []Value) (*wireValue, error) {
	w := &wireValue{K: kind, E: make([]json.RawMessage, 0, len(elems))}
	for _, e := range elems {
		raw, err := EncodeValue(e)
		if err != nil {
			return nil, err
		}
		w.E = append(w.E, raw)
	}
	return w, nil
}

func fromWire(w *wireValue) (Value, error) {
	switch w.K {
	case "null":
		return Null{}, nil
	case "bool":
		if w.B == nil {
			return nil, fmt.Errorf("decode: bool without payload")
		}
		return Bool(*w.B), nil
	case "int":
		if w.I == nil {
			return nil, fmt.Errorf("decode: int without payload")
		}
		return Int(*w.I), nil
	case "float":
		if w.F == nil {
			return nil, fmt.Errorf("decode: float without payload")
		}
		return Float(*w.F), nil
	case "str":
		if w.S == nil {
			return nil, fmt.Errorf("decode: str without payload")
		}
		return Str(*w.S), nil
	case "struct":
		if len(w.N) != len(w.E) {
			return nil, fmt.Errorf("decode: struct has %d names but %d values", len(w.N), len(w.E))
		}
		fields := make([]Field, 0, len(w.N))
		for i, name := range w.N {
			v, err := DecodeValue(w.E[i])
			if err != nil {
				return nil, err
			}
			fields = append(fields, Field{Name: name, Value: v})
		}
		return NewStruct(fields...), nil
	case "bag", "list", "set":
		elems := make([]Value, 0, len(w.E))
		for _, raw := range w.E {
			v, err := DecodeValue(raw)
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
		}
		switch w.K {
		case "bag":
			return NewBag(elems...), nil
		case "list":
			return NewList(elems...), nil
		default:
			return NewSet(elems...), nil
		}
	default:
		return nil, fmt.Errorf("decode: unknown kind %q", w.K)
	}
}
