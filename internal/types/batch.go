package types

// BatchSize is the default number of values a batched operator moves per
// NextBatch call. Batch-at-a-time execution amortizes per-call overhead
// (interface dispatch, channel operations, predicate setup) over up to this
// many tuples.
const BatchSize = 1024

// Batch is a reusable buffer of values flowing between batch-at-a-time
// operators. A producer resets the batch and appends up to its capacity;
// consumers read the live slice via Values. Batches are not safe for
// concurrent use: ownership transfers whole (the scatter-gather operator
// recycles batches through a free list rather than sharing them).
type Batch struct {
	vals []Value
}

// NewBatch returns an empty batch with the given capacity; capacity <= 0
// means BatchSize.
func NewBatch(capacity int) *Batch {
	if capacity <= 0 {
		capacity = BatchSize
	}
	return &Batch{vals: make([]Value, 0, capacity)}
}

// Reset empties the batch, keeping its buffer.
func (b *Batch) Reset() { b.vals = b.vals[:0] }

// Len reports the number of live values.
func (b *Batch) Len() int { return len(b.vals) }

// Cap reports the batch capacity.
func (b *Batch) Cap() int { return cap(b.vals) }

// Full reports whether the batch has reached its capacity.
func (b *Batch) Full() bool { return len(b.vals) == cap(b.vals) }

// At returns the i-th value.
func (b *Batch) At(i int) Value { return b.vals[i] }

// Set replaces the i-th value (in-place transforms).
func (b *Batch) Set(i int, v Value) { b.vals[i] = v }

// Append adds one value. Appending past the capacity grows the buffer;
// producers honoring the batch protocol check Full first.
func (b *Batch) Append(v Value) { b.vals = append(b.vals, v) }

// Truncate drops all but the first n values (selection-vector compaction).
func (b *Batch) Truncate(n int) { b.vals = b.vals[:n] }

// Values returns the live value slice (length Len). The slice aliases the
// batch's buffer: it is valid until the next Reset/Append/Truncate and may
// be mutated in place by 1:1 operators.
func (b *Batch) Values() []Value { return b.vals }
