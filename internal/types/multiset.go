package types

import "bytes"

// Bag algebra helpers. DISCO's answer model is multiset-based: "In DISCO,
// the union of two bags is a bag" (paper §1.3). These operations implement
// the collection semantics the runtime and the property tests rely on.

// BagUnion returns the multiset union of the given bags: every element of
// every argument appears with summed multiplicity.
func BagUnion(bags ...*Bag) *Bag {
	n := 0
	for _, b := range bags {
		n += b.Len()
	}
	elems := make([]Value, 0, n)
	for _, b := range bags {
		elems = append(elems, b.elems...)
	}
	return &Bag{elems: elems}
}

// BagMap applies f to every element of b and collects the results.
func BagMap(b *Bag, f func(Value) (Value, error)) (*Bag, error) {
	out := make([]Value, 0, b.Len())
	for _, e := range b.elems {
		v, err := f(e)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return &Bag{elems: out}, nil
}

// BagFilter keeps the elements of b for which pred returns true.
func BagFilter(b *Bag, pred func(Value) (bool, error)) (*Bag, error) {
	out := make([]Value, 0, b.Len())
	for _, e := range b.elems {
		keep, err := pred(e)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, e)
		}
	}
	return &Bag{elems: out}, nil
}

// BagDistinct returns a bag with one occurrence of each distinct element.
func BagDistinct(b *Bag) *Bag {
	var keyer Keyer
	seen := make(map[string]bool, b.Len())
	out := make([]Value, 0, b.Len())
	for _, e := range b.elems {
		k := keyer.Key(e)
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return &Bag{elems: out}
}

// Flatten concatenates a bag of collections into a single bag of their
// elements, implementing the OQL flatten operator used by the implicit
// extent definition (paper §2.1).
func Flatten(b *Bag) (*Bag, error) {
	out := make([]Value, 0, b.Len())
	for _, e := range b.elems {
		elems, err := Elements(e)
		if err != nil {
			return nil, err
		}
		out = append(out, elems...)
	}
	return &Bag{elems: out}, nil
}

// Multiplicity reports how many elements of b are model-equal to v.
func Multiplicity(b *Bag, v Value) int {
	key := AppendCanonicalKey(nil, v)
	var buf []byte
	n := 0
	for _, e := range b.elems {
		buf = AppendCanonicalKey(buf[:0], e)
		if bytes.Equal(buf, key) {
			n++
		}
	}
	return n
}
