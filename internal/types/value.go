// Package types implements the ODMG-93 style value and type system that the
// DISCO mediator is built on (paper §2). Values are immutable once
// constructed and print in OQL literal syntax, which is what makes the query
// language closed under data: any value can be embedded back into a query
// (paper §4, "OQL is closed with respect to queries and data").
package types

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic kind of a Value.
type Kind uint8

// The value kinds of the DISCO data model. Scalar kinds (Bool..String) map
// onto ODL attribute types; collection kinds carry element values; Struct is
// the ODMG struct constructor used in select projections.
const (
	KindNull Kind = iota + 1
	KindBool
	KindInt
	KindFloat
	KindString
	KindStruct
	KindBag
	KindList
	KindSet
)

// String returns the lowercase name of the kind as used in error messages.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindStruct:
		return "struct"
	case KindBag:
		return "bag"
	case KindList:
		return "list"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a runtime value of the DISCO data model.
//
// Implementations are Null, Bool, Int, Float, Str, *Struct, *Bag, *List and
// *Set. Equal implements the model's notion of equality: numeric values
// compare across Int/Float, bags compare as multisets, sets as sets, lists
// positionally, and structs field-by-field in declaration order.
type Value interface {
	// Kind reports the dynamic kind of the value.
	Kind() Kind
	// Equal reports whether the value equals other under model equality.
	Equal(other Value) bool
	// String renders the value in OQL literal syntax, e.g.
	// bag(struct(name: "Mary", salary: 200)).
	String() string
}

// Null is the absent value (used for missing attributes and outer results).
type Null struct{}

// Kind implements Value.
func (Null) Kind() Kind { return KindNull }

// Equal implements Value.
func (Null) Equal(other Value) bool { return other != nil && other.Kind() == KindNull }

// String implements Value.
func (Null) String() string { return "nil" }

// Bool is a boolean value.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// Equal implements Value.
func (b Bool) Equal(other Value) bool {
	o, ok := other.(Bool)
	return ok && b == o
}

// String implements Value.
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }

// Int is a 64-bit integer value (covers ODL Short, Long and friends).
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// Equal implements Value. Ints equal Floats with the same numeric value.
func (i Int) Equal(other Value) bool {
	switch o := other.(type) {
	case Int:
		return i == o
	case Float:
		return float64(i) == float64(o)
	default:
		return false
	}
}

// String implements Value.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Float is a 64-bit floating point value (ODL Float and Double).
type Float float64

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// Equal implements Value. Floats equal Ints with the same numeric value.
func (f Float) Equal(other Value) bool {
	switch o := other.(type) {
	case Float:
		return f == o
	case Int:
		return float64(f) == float64(o)
	default:
		return false
	}
}

// String implements Value.
func (f Float) String() string {
	s := strconv.FormatFloat(float64(f), 'g', -1, 64)
	// Keep the literal recognizable as a float so answers round-trip
	// through the OQL parser with the same kind.
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		s += ".0"
	}
	return s
}

// Str is a string value.
type Str string

// Kind implements Value.
func (Str) Kind() Kind { return KindString }

// Equal implements Value.
func (s Str) Equal(other Value) bool {
	o, ok := other.(Str)
	return ok && s == o
}

// String implements Value. The result is a double-quoted OQL string literal.
func (s Str) String() string { return strconv.Quote(string(s)) }

// Field is one named field of a Struct.
type Field struct {
	Name  string
	Value Value
}

// Struct is an ordered sequence of named fields, as produced by the OQL
// struct(...) constructor and by data sources returning tuples.
//
// Small structs (the common tuple case: a handful of attributes) resolve
// field names by linear scan; only structs wider than structIndexThreshold
// build a map index. This keeps tuple construction at two allocations on
// the execution hot path.
type Struct struct {
	fields []Field
	index  map[string]int // nil for small structs
}

// structIndexThreshold is the field count above which a struct builds a
// map index instead of scanning linearly.
const structIndexThreshold = 8

// NewStruct constructs a struct value from fields in order. Duplicate field
// names keep the last occurrence, mirroring struct construction in OQL.
// The fields slice is copied; StructFromFields is the no-copy variant.
func NewStruct(fields ...Field) *Struct {
	return StructFromFields(append(make([]Field, 0, len(fields)), fields...))
}

// StructFromFields constructs a struct value taking ownership of the
// fields slice — the caller must not use it afterwards. Duplicate field
// names keep the last occurrence, like NewStruct.
func StructFromFields(fields []Field) *Struct {
	if len(fields) > structIndexThreshold {
		return newWideStruct(fields)
	}
	// Small struct: dedup in place. Writes trail reads, so reusing the
	// backing array is safe.
	out := fields[:0]
	for _, f := range fields {
		dup := false
		for i := range out {
			if out[i].Name == f.Name {
				out[i].Value = f.Value
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f)
		}
	}
	return &Struct{fields: out}
}

// newWideStruct builds the map index alongside dedup for structs wide
// enough that linear name scans would not pay.
func newWideStruct(fields []Field) *Struct {
	s := &Struct{fields: fields[:0], index: make(map[string]int, len(fields))}
	for _, f := range fields {
		if i, ok := s.index[f.Name]; ok {
			s.fields[i].Value = f.Value
			continue
		}
		s.index[f.Name] = len(s.fields)
		s.fields = append(s.fields, f)
	}
	return s
}

// Kind implements Value.
func (*Struct) Kind() Kind { return KindStruct }

// Len reports the number of fields.
func (s *Struct) Len() int { return len(s.fields) }

// Fields returns a copy of the field list in declaration order.
func (s *Struct) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// FieldNames returns the field names in declaration order.
func (s *Struct) FieldNames() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// Get returns the value of the named field.
func (s *Struct) Get(name string) (Value, bool) {
	i, ok := s.IndexOf(name)
	if !ok {
		return nil, false
	}
	return s.fields[i].Value, true
}

// FieldAt returns the i-th field without copying the field list. Together
// with IndexOf it gives compiled expressions direct field-offset access: an
// evaluator caches the offset it resolved once and re-validates it with one
// name comparison per tuple instead of a map lookup.
func (s *Struct) FieldAt(i int) Field { return s.fields[i] }

// IndexOf returns the declaration-order index of the named field.
func (s *Struct) IndexOf(name string) (int, bool) {
	if s.index != nil {
		i, ok := s.index[name]
		return i, ok
	}
	for i, f := range s.fields {
		if f.Name == name {
			return i, true
		}
	}
	return 0, false
}

// JoinStructs returns a struct holding a's fields followed by b's — the
// merged tuple of a join — without materializing intermediate field-list
// copies. Duplicate names keep the last occurrence, like NewStruct.
func JoinStructs(a, b *Struct) *Struct {
	fields := make([]Field, 0, len(a.fields)+len(b.fields))
	fields = append(fields, a.fields...)
	fields = append(fields, b.fields...)
	return StructFromFields(fields)
}

// ExtendStruct returns st with one extra field appended (a dependent-binding
// extension), again without an intermediate field-list copy.
func ExtendStruct(st *Struct, f Field) *Struct {
	fields := make([]Field, 0, len(st.fields)+1)
	fields = append(fields, st.fields...)
	fields = append(fields, f)
	return StructFromFields(fields)
}

// Equal implements Value. Structs are equal when they have the same field
// names in the same order with equal values.
func (s *Struct) Equal(other Value) bool {
	o, ok := other.(*Struct)
	if !ok || len(s.fields) != len(o.fields) {
		return false
	}
	for i, f := range s.fields {
		g := o.fields[i]
		if f.Name != g.Name || !f.Value.Equal(g.Value) {
			return false
		}
	}
	return true
}

// String implements Value.
func (s *Struct) String() string {
	var b strings.Builder
	b.WriteString("struct(")
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteString(": ")
		b.WriteString(f.Value.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Bag is an unordered collection that preserves duplicates (a multiset).
// It is the fundamental collection of DISCO query answers: "the union of two
// bags is a bag" (paper §1.3).
type Bag struct {
	elems []Value
}

// NewBag constructs a bag from the given elements. The slice is copied.
func NewBag(elems ...Value) *Bag {
	b := &Bag{elems: make([]Value, len(elems))}
	copy(b.elems, elems)
	return b
}

// Kind implements Value.
func (*Bag) Kind() Kind { return KindBag }

// Len reports the number of elements, counting duplicates.
func (b *Bag) Len() int { return len(b.elems) }

// Elems returns a copy of the element slice. Order is an implementation
// detail and carries no meaning.
func (b *Bag) Elems() []Value {
	out := make([]Value, len(b.elems))
	copy(out, b.elems)
	return out
}

// Range calls f for each element in internal order, stopping early when f
// returns false. It is the no-copy iteration path for operators on the hot
// path; f must not mutate the bag.
func (b *Bag) Range(f func(Value) bool) {
	for _, e := range b.elems {
		if !f(e) {
			return
		}
	}
}

// At returns the i-th element in internal order; it exists for iteration and
// must not be used to assign meaning to positions.
func (b *Bag) At(i int) Value { return b.elems[i] }

// Equal implements Value using multiset equality: same elements with the
// same multiplicities, regardless of order.
func (b *Bag) Equal(other Value) bool {
	o, ok := other.(*Bag)
	if !ok {
		return false
	}
	return multisetEqual(b.elems, o.elems)
}

// String implements Value. Elements print in a canonical sorted order so
// that equal bags print identically, which keeps partial answers and test
// goldens deterministic.
func (b *Bag) String() string { return collectionString("bag", canonicalOrder(b.elems)) }

// List is an ordered collection.
type List struct {
	elems []Value
}

// NewList constructs a list from the given elements. The slice is copied.
func NewList(elems ...Value) *List {
	l := &List{elems: make([]Value, len(elems))}
	copy(l.elems, elems)
	return l
}

// Kind implements Value.
func (*List) Kind() Kind { return KindList }

// Len reports the number of elements.
func (l *List) Len() int { return len(l.elems) }

// Elems returns a copy of the element slice in list order.
func (l *List) Elems() []Value {
	out := make([]Value, len(l.elems))
	copy(out, l.elems)
	return out
}

// Range calls f for each element in list order, stopping early when f
// returns false. No-copy; f must not mutate the list.
func (l *List) Range(f func(Value) bool) {
	for _, e := range l.elems {
		if !f(e) {
			return
		}
	}
}

// At returns the i-th element.
func (l *List) At(i int) Value { return l.elems[i] }

// Equal implements Value using positional equality.
func (l *List) Equal(other Value) bool {
	o, ok := other.(*List)
	if !ok || len(l.elems) != len(o.elems) {
		return false
	}
	for i, e := range l.elems {
		if !e.Equal(o.elems[i]) {
			return false
		}
	}
	return true
}

// String implements Value.
func (l *List) String() string { return collectionString("list", l.elems) }

// Set is an unordered collection without duplicates.
type Set struct {
	elems []Value
}

// NewSet constructs a set, discarding duplicate elements (model equality).
func NewSet(elems ...Value) *Set {
	s := &Set{}
	for _, e := range elems {
		if !s.Contains(e) {
			s.elems = append(s.elems, e)
		}
	}
	return s
}

// Kind implements Value.
func (*Set) Kind() Kind { return KindSet }

// Len reports the number of distinct elements.
func (s *Set) Len() int { return len(s.elems) }

// Elems returns a copy of the element slice. Order carries no meaning.
func (s *Set) Elems() []Value {
	out := make([]Value, len(s.elems))
	copy(out, s.elems)
	return out
}

// Range calls f for each element in internal order, stopping early when f
// returns false. No-copy; f must not mutate the set.
func (s *Set) Range(f func(Value) bool) {
	for _, e := range s.elems {
		if !f(e) {
			return
		}
	}
}

// Contains reports whether the set contains an element equal to v.
func (s *Set) Contains(v Value) bool {
	for _, e := range s.elems {
		if e.Equal(v) {
			return true
		}
	}
	return false
}

// Equal implements Value using set equality.
func (s *Set) Equal(other Value) bool {
	o, ok := other.(*Set)
	if !ok || len(s.elems) != len(o.elems) {
		return false
	}
	for _, e := range s.elems {
		if !o.Contains(e) {
			return false
		}
	}
	return true
}

// String implements Value. Elements print in canonical sorted order.
func (s *Set) String() string { return collectionString("set", canonicalOrder(s.elems)) }

// Compile-time interface conformance checks.
var (
	_ Value = Null{}
	_ Value = Bool(false)
	_ Value = Int(0)
	_ Value = Float(0)
	_ Value = Str("")
	_ Value = (*Struct)(nil)
	_ Value = (*Bag)(nil)
	_ Value = (*List)(nil)
	_ Value = (*Set)(nil)
)

// Compare orders two values. It returns a negative, zero or positive integer
// in the manner of strings.Compare. Only scalars of comparable kinds order:
// numerics against numerics, strings against strings, booleans against
// booleans (false < true). Comparing anything else is an error, matching the
// run-time errors the paper prescribes for type mismatches (§2.1).
func Compare(a, b Value) (int, error) {
	switch x := a.(type) {
	case Int:
		switch y := b.(type) {
		case Int:
			return cmpInt64(int64(x), int64(y)), nil
		case Float:
			return cmpFloat64(float64(x), float64(y)), nil
		}
	case Float:
		switch y := b.(type) {
		case Int:
			return cmpFloat64(float64(x), float64(y)), nil
		case Float:
			return cmpFloat64(float64(x), float64(y)), nil
		}
	case Str:
		if y, ok := b.(Str); ok {
			return strings.Compare(string(x), string(y)), nil
		}
	case Bool:
		if y, ok := b.(Bool); ok {
			switch {
			case bool(x) == bool(y):
				return 0, nil
			case bool(y):
				return -1, nil
			default:
				return 1, nil
			}
		}
	}
	return 0, fmt.Errorf("cannot compare %s with %s", a.Kind(), b.Kind())
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b || (math.IsNaN(a) && !math.IsNaN(b)):
		return -1
	case a > b || (!math.IsNaN(a) && math.IsNaN(b)):
		return 1
	default:
		return 0
	}
}

// Numeric extracts the float64 numeric value of an Int or Float.
func Numeric(v Value) (float64, bool) {
	switch x := v.(type) {
	case Int:
		return float64(x), true
	case Float:
		return float64(x), true
	default:
		return 0, false
	}
}

// Truthy interprets a value as a boolean condition. Only Bool values carry
// truth; everything else is an error to keep predicate typing strict.
func Truthy(v Value) (bool, error) {
	b, ok := v.(Bool)
	if !ok {
		return false, fmt.Errorf("condition is %s, not boolean", v.Kind())
	}
	return bool(b), nil
}

// Elements returns the elements of any collection value, or an error for
// non-collections. Bags and sets yield elements in internal order. The
// slice is a defensive copy; iteration-only callers should prefer
// RangeElements, which does not allocate.
func Elements(v Value) ([]Value, error) {
	switch c := v.(type) {
	case *Bag:
		return c.Elems(), nil
	case *List:
		return c.Elems(), nil
	case *Set:
		return c.Elems(), nil
	default:
		return nil, fmt.Errorf("%s is not a collection", v.Kind())
	}
}

// RangeElements iterates any collection value without copying its element
// slice, stopping early when f returns false. It errors on non-collections
// exactly as Elements does. f must not retain or mutate the collection.
func RangeElements(v Value, f func(Value) bool) error {
	switch c := v.(type) {
	case *Bag:
		c.Range(f)
		return nil
	case *List:
		c.Range(f)
		return nil
	case *Set:
		c.Range(f)
		return nil
	default:
		return fmt.Errorf("%s is not a collection", v.Kind())
	}
}

// NumElements reports the element count of any collection value without
// copying.
func NumElements(v Value) (int, error) {
	switch c := v.(type) {
	case *Bag:
		return c.Len(), nil
	case *List:
		return c.Len(), nil
	case *Set:
		return c.Len(), nil
	default:
		return 0, fmt.Errorf("%s is not a collection", v.Kind())
	}
}

// canonicalOrder returns the elements sorted by canonical key, used only for
// printing so equal collections print identically.
func canonicalOrder(elems []Value) []Value {
	out := make([]Value, len(elems))
	copy(out, elems)
	sort.SliceStable(out, func(i, j int) bool {
		return CanonicalKey(out[i]) < CanonicalKey(out[j])
	})
	return out
}

// CanonicalKey returns a string that is identical for model-equal values and
// (for practical purposes) distinct otherwise. It backs multiset equality,
// set deduplication in hash contexts, and deterministic printing. Hot loops
// that key many values (distinct, hash-join probes) should use a Keyer,
// which reuses one buffer across calls.
func CanonicalKey(v Value) string {
	return string(AppendCanonicalKey(nil, v))
}

// Keyer computes canonical keys with a reusable scratch buffer, so a
// per-probe key costs one string allocation (the map key) instead of
// rebuilding a strings.Builder from scratch each call. A Keyer is not safe
// for concurrent use; give each operator its own.
type Keyer struct {
	buf []byte
}

// Key returns the canonical key of v.
func (k *Keyer) Key(v Value) string {
	k.buf = AppendCanonicalKey(k.buf[:0], v)
	return string(k.buf)
}

// AppendCanonicalKey appends the canonical key of v to dst and returns the
// extended buffer, in the manner of strconv.AppendInt.
func AppendCanonicalKey(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case Null:
		return append(dst, 'N')
	case Bool:
		if x {
			return append(dst, "b1"...)
		}
		return append(dst, "b0"...)
	case Int:
		// Numeric canonical form is shared between Int and Float so
		// Int(2).Equal(Float(2)) pairs with equal keys.
		dst = append(dst, 'n')
		return strconv.AppendFloat(dst, float64(x), 'g', -1, 64)
	case Float:
		dst = append(dst, 'n')
		return strconv.AppendFloat(dst, float64(x), 'g', -1, 64)
	case Str:
		dst = append(dst, 's')
		return strconv.AppendQuote(dst, string(x))
	case *Struct:
		dst = append(dst, "t{"...)
		for _, f := range x.fields {
			dst = strconv.AppendQuote(dst, f.Name)
			dst = append(dst, '=')
			dst = AppendCanonicalKey(dst, f.Value)
			dst = append(dst, ';')
		}
		return append(dst, '}')
	case *Bag:
		return appendCanonicalMulti(dst, 'B', x.elems)
	case *Set:
		return appendCanonicalMulti(dst, 'S', x.elems)
	case *List:
		dst = append(dst, "L["...)
		for _, e := range x.elems {
			dst = AppendCanonicalKey(dst, e)
			dst = append(dst, ';')
		}
		return append(dst, ']')
	default:
		return append(dst, fmt.Sprintf("?%T", v)...)
	}
}

// appendCanonicalMulti renders an unordered collection: element keys sort
// so that model-equal collections produce identical renderings.
func appendCanonicalMulti(dst []byte, tag byte, elems []Value) []byte {
	keys := make([][]byte, len(elems))
	for i, e := range elems {
		keys[i] = AppendCanonicalKey(nil, e)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	dst = append(dst, tag, '[')
	for _, k := range keys {
		dst = append(dst, k...)
		dst = append(dst, ';')
	}
	return append(dst, ']')
}

func multisetEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	var keyer Keyer
	counts := make(map[string]int, len(a))
	for _, e := range a {
		counts[keyer.Key(e)]++
	}
	for _, e := range b {
		k := keyer.Key(e)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

func collectionString(name string, elems []Value) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, e := range elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteByte(')')
	return b.String()
}
