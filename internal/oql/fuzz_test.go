package oql

import "testing"

// FuzzParseQuery checks that the parser never panics and that successful
// parses satisfy the print/reparse closure property on arbitrary input.
// Run with `go test -fuzz=FuzzParseQuery ./internal/oql` to explore beyond
// the seed corpus.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`select x.name from x in person where x.salary > 10`,
		`union(select y.name from y in person0 where y.salary > 10, bag("Sam"))`,
		`select struct(a: x.b + 1) from x in c, y in d where not x.a = y.a or true`,
		`flatten(select x.e from x in metaextent where x.interface = p)`,
		`count(distinct(bag(1, 1, 2.5, "x", nil)))`,
		`select distinct x from x in person*`,
		`a mod 2 = 0 and contains(n, "q")`,
		`-5 + -2.5 * (3 - x)`,
		`""`,
		`select`,
		`((((`,
		"\"unterminated",
		`x in bag(1) in bag(2)`,
		`bag(`,
		`1e999`,
		`select x from x in a, y in x.kids where y in x.kids`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseQuery(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := e.String()
		back, err := ParseQuery(printed)
		if err != nil {
			t.Fatalf("print of parsed %q does not reparse: %q: %v", src, printed, err)
		}
		if !Equal(e, back) {
			t.Fatalf("round trip mismatch for %q:\n first  %s\n second %s", src, e, back)
		}
	})
}

// FuzzParseDefine covers the statement form.
func FuzzParseDefine(f *testing.F) {
	f.Add(`define v as select x from x in c;`)
	f.Add(`define double as select struct(a: x.a + y.a) from x in p and y in q where x.id = y.id`)
	f.Add(`define as`)
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseDefine(src)
		if err != nil {
			return
		}
		if _, err := ParseDefine(d.String()); err != nil {
			t.Fatalf("define print does not reparse: %q: %v", d, err)
		}
	})
}
