package oql

import (
	"testing"

	"disco/internal/types"
)

// FuzzParseQuery checks that the parser never panics and that successful
// parses satisfy the print/reparse closure property on arbitrary input.
// Run with `go test -fuzz=FuzzParseQuery ./internal/oql` to explore beyond
// the seed corpus.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`select x.name from x in person where x.salary > 10`,
		`union(select y.name from y in person0 where y.salary > 10, bag("Sam"))`,
		`select struct(a: x.b + 1) from x in c, y in d where not x.a = y.a or true`,
		`flatten(select x.e from x in metaextent where x.interface = p)`,
		`count(distinct(bag(1, 1, 2.5, "x", nil)))`,
		`select distinct x from x in person*`,
		`a mod 2 = 0 and contains(n, "q")`,
		`-5 + -2.5 * (3 - x)`,
		`""`,
		`select`,
		`((((`,
		"\"unterminated",
		`x in bag(1) in bag(2)`,
		`bag(`,
		`1e999`,
		`select x from x in a, y in x.kids where y in x.kids`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseQuery(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := e.String()
		back, err := ParseQuery(printed)
		if err != nil {
			t.Fatalf("print of parsed %q does not reparse: %q: %v", src, printed, err)
		}
		if !Equal(e, back) {
			t.Fatalf("round trip mismatch for %q:\n first  %s\n second %s", src, e, back)
		}
	})
}

// FuzzCompiledEval checks the compiled evaluator against the tree-walking
// reference on arbitrary parseable expressions: same value (and kind) or
// both fail. Run with `go test -fuzz=FuzzCompiledEval ./internal/oql`.
func FuzzCompiledEval(f *testing.F) {
	seeds := []string{
		`select x.name from x in person where x.salary > 10`,
		`x.salary * 2 + n`,
		`n in bag(1, 7) and not b`,
		`false and (1 / 0 = 1)`,
		`struct(a: k + 1, b: s).a`,
		`sum(select k from k in kids where k in bag(1, 2, 3))`,
		`select (select k from k in bag(2)) from k in bag(1)`,
		`count(person) + count(nosuch)`,
		`1 / 0`,
		`select m from g in groups, m in g.members`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tuple := types.NewStruct(
		types.Field{Name: "x", Value: types.NewStruct(
			types.Field{Name: "name", Value: types.Str("Mary")},
			types.Field{Name: "salary", Value: types.Int(200)},
		)},
		types.Field{Name: "n", Value: types.Int(7)},
		types.Field{Name: "k", Value: types.Int(3)},
		types.Field{Name: "s", Value: types.Str("abc")},
		types.Field{Name: "b", Value: types.Bool(true)},
		types.Field{Name: "kids", Value: types.NewBag(types.Int(1), types.Int(2))},
	)
	person := types.NewBag(tuple)
	resolver := ResolverFunc(func(name string, _ bool) (types.Value, error) {
		switch name {
		case "person", "groups":
			return person, nil
		default:
			return nil, errUnknown
		}
	})
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseQuery(src)
		if err != nil {
			return
		}
		var env *Env
		for _, fl := range tuple.Fields() {
			env = env.Bind(fl.Name, fl.Value)
		}
		want, wantErr := Eval(e, env, resolver)

		prog, err := Compile(e)
		if err != nil {
			t.Fatalf("compile of parseable %q failed: %v", src, err)
		}
		fenv := prog.NewEnv(resolver)
		fenv.BindStruct(tuple)
		got, gotErr := prog.Eval(fenv)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%q: reference err = %v, compiled err = %v", src, wantErr, gotErr)
		}
		if wantErr == nil && (!got.Equal(want) || got.Kind() != want.Kind()) {
			t.Fatalf("%q: reference = %s (%s), compiled = %s (%s)", src, want, want.Kind(), got, got.Kind())
		}
	})
}

// FuzzParseDefine covers the statement form.
func FuzzParseDefine(f *testing.F) {
	f.Add(`define v as select x from x in c;`)
	f.Add(`define double as select struct(a: x.a + y.a) from x in p and y in q where x.id = y.id`)
	f.Add(`define as`)
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseDefine(src)
		if err != nil {
			return
		}
		if _, err := ParseDefine(d.String()); err != nil {
			t.Fatalf("define print does not reparse: %q: %v", d, err)
		}
	})
}
