package oql

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"disco/internal/types"
)

// randomExpr generates a canonical random OQL AST: one the parser itself
// could have produced (constructor calls over literals are folded, unary
// minus over numeric literals is folded, identifiers avoid reserved and
// operator-like words).
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return randomLeaf(r)
	}
	switch r.Intn(10) {
	case 0, 1:
		return randomLeaf(r)
	case 2:
		return &Path{Base: randomExpr(r, depth-1), Field: randomIdentName(r)}
	case 3:
		return &Unary{Op: OpNot, X: randomExpr(r, depth-1)}
	case 4:
		// Unary minus over a non-literal operand only.
		return &Unary{Op: OpNeg, X: &Path{Base: &Ident{Name: randomIdentName(r)}, Field: randomIdentName(r)}}
	case 5:
		ops := []BinaryOp{OpOr, OpAnd, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpIn, OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return &Binary{Op: ops[r.Intn(len(ops))], L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 6:
		n := 1 + r.Intn(3)
		fields := make([]StructField, 0, n)
		nonLit := false
		for i := 0; i < n; i++ {
			e := randomExpr(r, depth-1)
			if _, ok := e.(*Literal); !ok {
				nonLit = true
			}
			fields = append(fields, StructField{Name: randomIdentName(r), Expr: e})
		}
		if !nonLit {
			// Would fold; force one non-literal field.
			fields[0].Expr = &Ident{Name: randomIdentName(r)}
		}
		// The parser keeps the last duplicate name; avoid duplicates.
		seen := map[string]bool{}
		for i := range fields {
			for seen[fields[i].Name] {
				fields[i].Name += "x"
			}
			seen[fields[i].Name] = true
		}
		return &StructCtor{Fields: fields}
	case 7:
		fns := []string{"union", "flatten", "count", "sum", "min", "max", "avg", "element", "distinct", "exists"}
		fn := fns[r.Intn(len(fns))]
		n := 1
		if fn == "union" {
			n = 1 + r.Intn(3)
		}
		args := make([]Expr, 0, n)
		for i := 0; i < n; i++ {
			args = append(args, randomExpr(r, depth-1))
		}
		return &Call{Fn: fn, Args: args}
	case 8:
		// bag/list/set constructor with at least one non-literal argument.
		fns := []string{"bag", "list", "set"}
		args := []Expr{&Ident{Name: randomIdentName(r)}}
		if r.Intn(2) == 0 {
			args = append(args, randomExpr(r, depth-1))
		}
		return &Call{Fn: fns[r.Intn(len(fns))], Args: args}
	default:
		return randomSelect(r, depth-1)
	}
}

func randomSelect(r *rand.Rand, depth int) *Select {
	sel := &Select{Distinct: r.Intn(3) == 0, Proj: randomExpr(r, depth)}
	n := 1 + r.Intn(2)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		v := randomIdentName(r)
		for seen[v] {
			v += "v"
		}
		seen[v] = true
		sel.From = append(sel.From, Binding{Var: v, Domain: randomDomain(r, depth)})
	}
	if r.Intn(2) == 0 {
		sel.Where = randomExpr(r, depth)
	}
	return sel
}

// randomDomain produces domain expressions, weighted toward extents with an
// occasional star closure.
func randomDomain(r *rand.Rand, depth int) Expr {
	switch r.Intn(4) {
	case 0:
		return &Ident{Name: randomIdentName(r), Star: true}
	case 1:
		if depth > 0 {
			return &Call{Fn: "union", Args: []Expr{randomDomain(r, depth-1), randomDomain(r, depth-1)}}
		}
		return &Ident{Name: randomIdentName(r)}
	default:
		return &Ident{Name: randomIdentName(r)}
	}
}

func randomLeaf(r *rand.Rand) Expr {
	switch r.Intn(7) {
	case 0:
		return &Literal{Val: types.Int(r.Int63n(2001) - 1000)}
	case 1:
		return &Literal{Val: types.Float(float64(r.Int63n(1000)) + 0.25)}
	case 2:
		return &Literal{Val: types.Str(randomIdentName(r))}
	case 3:
		return &Literal{Val: types.Bool(r.Intn(2) == 0)}
	case 4:
		return &Literal{Val: randomLiteralCollection(r)}
	case 5:
		return &Ident{Name: randomIdentName(r)}
	default:
		return &Literal{Val: types.Null{}}
	}
}

// randomLiteralCollection builds collection literals the folding parser can
// reproduce: bags and lists of scalars, sets built through NewSet (deduped).
func randomLiteralCollection(r *rand.Rand) types.Value {
	n := r.Intn(3)
	elems := make([]types.Value, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0:
			elems = append(elems, types.Int(r.Int63n(100)))
		case 1:
			elems = append(elems, types.Str(randomIdentName(r)))
		default:
			elems = append(elems, types.Bool(true))
		}
	}
	switch r.Intn(3) {
	case 0:
		return types.NewBag(elems...)
	case 1:
		return types.NewList(elems...)
	default:
		return types.NewSet(elems...)
	}
}

var identLetters = []string{"alpha", "beta", "gamma", "delta", "extent", "person", "salary", "name", "src", "q"}

func randomIdentName(r *rand.Rand) string {
	return identLetters[r.Intn(len(identLetters))]
}

type genExpr struct{ E Expr }

func (genExpr) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genExpr{E: randomExpr(r, 3)})
}

// TestPrintParseRoundTripProperty is the closure property the partial
// evaluation semantics depends on (paper §4): every AST prints to OQL text
// that parses back to the same AST.
func TestPrintParseRoundTripProperty(t *testing.T) {
	f := func(g genExpr) bool {
		src := g.E.String()
		parsed, err := ParseQuery(src)
		if err != nil {
			t.Logf("parse %q: %v", src, err)
			return false
		}
		if !Equal(parsed, g.E) {
			t.Logf("round trip mismatch:\n  ast:     %s\n  reparse: %s", g.E, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPrintIsStableProperty: printing is a fixpoint — parse(print(e)) prints
// to the same text.
func TestPrintIsStableProperty(t *testing.T) {
	f := func(g genExpr) bool {
		src := g.E.String()
		parsed, err := ParseQuery(src)
		if err != nil {
			return false
		}
		return parsed.String() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPrintPaperPartialAnswer(t *testing.T) {
	// The §1.3 partial answer must print exactly as a legal query.
	inner := &Select{
		Proj:  &Path{Base: &Ident{Name: "y"}, Field: "name"},
		From:  []Binding{{Var: "y", Domain: &Ident{Name: "person0"}}},
		Where: &Binary{Op: OpGt, L: &Path{Base: &Ident{Name: "y"}, Field: "salary"}, R: &Literal{Val: types.Int(10)}},
	}
	ans := &Call{Fn: "union", Args: []Expr{inner, &Literal{Val: types.NewBag(types.Str("Sam"))}}}
	want := `union(select y.name from y in person0 where y.salary > 10, bag("Sam"))`
	if got := ans.String(); got != want {
		t.Errorf("partial answer prints as %q, want %q", got, want)
	}
	if _, err := ParseQuery(ans.String()); err != nil {
		t.Errorf("partial answer does not reparse: %v", err)
	}
}

func TestNestedSelectProjectionParenthesized(t *testing.T) {
	inner := &Select{Proj: &Ident{Name: "y"}, From: []Binding{{Var: "y", Domain: &Ident{Name: "b"}}}}
	outer := &Select{Proj: inner, From: []Binding{{Var: "x", Domain: &Ident{Name: "a"}}}}
	src := outer.String()
	parsed, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if !Equal(parsed, outer) {
		t.Errorf("nested select round trip failed: %q", src)
	}
}
