package oql

import (
	"fmt"
	"sort"
	"strings"

	"disco/internal/types"
)

// Resolver resolves free collection names (extents and views) during
// evaluation. star is true for the DISCO T* subtype-closure reference.
type Resolver interface {
	Resolve(name string, star bool) (types.Value, error)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(name string, star bool) (types.Value, error)

// Resolve implements Resolver.
func (f ResolverFunc) Resolve(name string, star bool) (types.Value, error) {
	return f(name, star)
}

// EmptyResolver resolves nothing; it serves contexts where every name must
// already be bound.
var EmptyResolver Resolver = ResolverFunc(func(name string, _ bool) (types.Value, error) {
	return nil, fmt.Errorf("unknown name %q", name)
})

// Env is a chain of variable bindings introduced by from clauses.
type Env struct {
	name   string
	val    types.Value
	parent *Env
}

// Bind returns a new environment extending e with one binding.
func (e *Env) Bind(name string, val types.Value) *Env {
	return &Env{name: name, val: val, parent: e}
}

// Lookup finds the innermost binding of name.
func (e *Env) Lookup(name string) (types.Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.val, true
		}
	}
	return nil, false
}

// EvalError is an evaluation failure annotated with the failing expression.
type EvalError struct {
	Expr Expr
	Err  error
}

// Error implements the error interface.
func (e *EvalError) Error() string {
	return fmt.Sprintf("eval %s: %v", e.Expr, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *EvalError) Unwrap() error { return e.Err }

// Eval evaluates an OQL expression against an environment and a resolver.
// It is the semantic reference for the whole system: the optimized runtime
// must agree with it (a property the tests check).
func Eval(e Expr, env *Env, r Resolver) (types.Value, error) {
	v, err := eval(e, env, r)
	if err != nil {
		if _, ok := err.(*EvalError); ok {
			return nil, err
		}
		return nil, &EvalError{Expr: e, Err: err}
	}
	return v, nil
}

func eval(e Expr, env *Env, r Resolver) (types.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Ident:
		if !x.Star {
			if v, ok := env.Lookup(x.Name); ok {
				return v, nil
			}
		}
		return r.Resolve(x.Name, x.Star)
	case *Path:
		base, err := Eval(x.Base, env, r)
		if err != nil {
			return nil, err
		}
		st, ok := base.(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("cannot access .%s on %s", x.Field, base.Kind())
		}
		v, ok := st.Get(x.Field)
		if !ok {
			return nil, fmt.Errorf("no attribute %q in %s", x.Field, base)
		}
		return v, nil
	case *Unary:
		return evalUnary(x, env, r)
	case *Binary:
		return evalBinary(x, env, r)
	case *StructCtor:
		fields := make([]types.Field, 0, len(x.Fields))
		for _, f := range x.Fields {
			v, err := Eval(f.Expr, env, r)
			if err != nil {
				return nil, err
			}
			fields = append(fields, types.Field{Name: f.Name, Value: v})
		}
		return types.NewStruct(fields...), nil
	case *Call:
		return evalCall(x, env, r)
	case *Select:
		return evalSelect(x, env, r)
	default:
		return nil, fmt.Errorf("cannot evaluate %T", e)
	}
}

func evalUnary(x *Unary, env *Env, r Resolver) (types.Value, error) {
	v, err := Eval(x.X, env, r)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case OpNot:
		b, err := types.Truthy(v)
		if err != nil {
			return nil, err
		}
		return types.Bool(!b), nil
	case OpNeg:
		switch n := v.(type) {
		case types.Int:
			return types.Int(-n), nil
		case types.Float:
			return types.Float(-n), nil
		default:
			return nil, fmt.Errorf("cannot negate %s", v.Kind())
		}
	default:
		return nil, fmt.Errorf("unknown unary operator")
	}
}

func evalBinary(x *Binary, env *Env, r Resolver) (types.Value, error) {
	// and/or short-circuit.
	if x.Op == OpAnd || x.Op == OpOr {
		lv, err := Eval(x.L, env, r)
		if err != nil {
			return nil, err
		}
		lb, err := types.Truthy(lv)
		if err != nil {
			return nil, err
		}
		if (x.Op == OpAnd && !lb) || (x.Op == OpOr && lb) {
			return types.Bool(lb), nil
		}
		rv, err := Eval(x.R, env, r)
		if err != nil {
			return nil, err
		}
		rb, err := types.Truthy(rv)
		if err != nil {
			return nil, err
		}
		return types.Bool(rb), nil
	}

	lv, err := Eval(x.L, env, r)
	if err != nil {
		return nil, err
	}
	rv, err := Eval(x.R, env, r)
	if err != nil {
		return nil, err
	}
	return ApplyBinary(x.Op, lv, rv)
}

// ApplyBinary applies a non-boolean-connective binary operator to two
// values. It is exported so data-source engines evaluate predicates with
// exactly the mediator's semantics (the paper warns that operator semantics
// must match exactly between mediator and source, §3.2).
func ApplyBinary(op BinaryOp, lv, rv types.Value) (types.Value, error) {
	switch op {
	case OpEq:
		return types.Bool(lv.Equal(rv)), nil
	case OpNe:
		return types.Bool(!lv.Equal(rv)), nil
	case OpLt, OpLe, OpGt, OpGe:
		c, err := types.Compare(lv, rv)
		if err != nil {
			return nil, err
		}
		switch op {
		case OpLt:
			return types.Bool(c < 0), nil
		case OpLe:
			return types.Bool(c <= 0), nil
		case OpGt:
			return types.Bool(c > 0), nil
		default:
			return types.Bool(c >= 0), nil
		}
	case OpIn:
		found := false
		if err := types.RangeElements(rv, func(e types.Value) bool {
			found = e.Equal(lv)
			return !found
		}); err != nil {
			return nil, fmt.Errorf("right side of in: %w", err)
		}
		return types.Bool(found), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return applyArith(op, lv, rv)
	default:
		return nil, fmt.Errorf("unknown binary operator %s", op)
	}
}

func applyArith(op BinaryOp, lv, rv types.Value) (types.Value, error) {
	// String concatenation via +.
	if op == OpAdd {
		if ls, ok := lv.(types.Str); ok {
			rs, ok := rv.(types.Str)
			if !ok {
				return nil, fmt.Errorf("cannot add %s to string", rv.Kind())
			}
			return ls + rs, nil
		}
	}
	li, lInt := lv.(types.Int)
	ri, rInt := rv.(types.Int)
	if lInt && rInt {
		switch op {
		case OpAdd:
			return li + ri, nil
		case OpSub:
			return li - ri, nil
		case OpMul:
			return li * ri, nil
		case OpDiv:
			if ri == 0 {
				return nil, fmt.Errorf("division by zero")
			}
			return li / ri, nil
		case OpMod:
			if ri == 0 {
				return nil, fmt.Errorf("modulo by zero")
			}
			return li % ri, nil
		}
	}
	lf, lok := types.Numeric(lv)
	rf, rok := types.Numeric(rv)
	if !lok || !rok {
		return nil, fmt.Errorf("cannot apply %s to %s and %s", op, lv.Kind(), rv.Kind())
	}
	switch op {
	case OpAdd:
		return types.Float(lf + rf), nil
	case OpSub:
		return types.Float(lf - rf), nil
	case OpMul:
		return types.Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		return types.Float(lf / rf), nil
	default:
		return nil, fmt.Errorf("mod requires integers")
	}
}

func evalCall(x *Call, env *Env, r Resolver) (types.Value, error) {
	args := make([]types.Value, 0, len(x.Args))
	for _, a := range x.Args {
		v, err := Eval(a, env, r)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return ApplyCall(x.Fn, args)
}

// ApplyCall applies a built-in OQL function to evaluated arguments.
func ApplyCall(fn string, args []types.Value) (types.Value, error) {
	switch fn {
	case "bag":
		return types.NewBag(args...), nil
	case "list":
		return types.NewList(args...), nil
	case "set":
		return types.NewSet(args...), nil
	case "union":
		bags := make([]*types.Bag, 0, len(args))
		for _, a := range args {
			b, err := toBag(a)
			if err != nil {
				return nil, fmt.Errorf("union: %w", err)
			}
			bags = append(bags, b)
		}
		return types.BagUnion(bags...), nil
	case "flatten":
		if err := wantArgs(fn, args, 1); err != nil {
			return nil, err
		}
		b, err := toBag(args[0])
		if err != nil {
			return nil, fmt.Errorf("flatten: %w", err)
		}
		return types.Flatten(b)
	case "distinct":
		if err := wantArgs(fn, args, 1); err != nil {
			return nil, err
		}
		b, err := toBag(args[0])
		if err != nil {
			return nil, fmt.Errorf("distinct: %w", err)
		}
		return types.BagDistinct(b), nil
	case "sort":
		// sort(coll) orders elements canonically (scalars by value,
		// everything else by canonical key) and returns a list — bags are
		// unordered, so presentation order needs an explicit operator.
		if err := wantArgs(fn, args, 1); err != nil {
			return nil, err
		}
		elems, err := types.Elements(args[0])
		if err != nil {
			return nil, fmt.Errorf("sort: %w", err)
		}
		sorted := append([]types.Value(nil), elems...)
		sort.SliceStable(sorted, func(i, j int) bool {
			if c, err := types.Compare(sorted[i], sorted[j]); err == nil {
				return c < 0
			}
			return types.CanonicalKey(sorted[i]) < types.CanonicalKey(sorted[j])
		})
		return types.NewList(sorted...), nil
	case "count":
		if err := wantArgs(fn, args, 1); err != nil {
			return nil, err
		}
		n, err := types.NumElements(args[0])
		if err != nil {
			return nil, fmt.Errorf("count: %w", err)
		}
		return types.Int(n), nil
	case "exists":
		if err := wantArgs(fn, args, 1); err != nil {
			return nil, err
		}
		n, err := types.NumElements(args[0])
		if err != nil {
			return nil, fmt.Errorf("exists: %w", err)
		}
		return types.Bool(n > 0), nil
	case "element":
		if err := wantArgs(fn, args, 1); err != nil {
			return nil, err
		}
		elems, err := types.Elements(args[0])
		if err != nil {
			return nil, fmt.Errorf("element: %w", err)
		}
		if len(elems) != 1 {
			return nil, fmt.Errorf("element: collection has %d elements, want exactly 1", len(elems))
		}
		return elems[0], nil
	case "sum", "avg", "min", "max":
		if err := wantArgs(fn, args, 1); err != nil {
			return nil, err
		}
		return aggregate(fn, args[0])
	case "contains":
		// contains(haystack, needle): substring test. Keyword-search
		// wrappers push it to their sources as a GREP.
		if err := wantArgs(fn, args, 2); err != nil {
			return nil, err
		}
		hay, ok := args[0].(types.Str)
		if !ok {
			return nil, fmt.Errorf("contains: first argument is %s, want string", args[0].Kind())
		}
		needle, ok := args[1].(types.Str)
		if !ok {
			return nil, fmt.Errorf("contains: second argument is %s, want string", args[1].Kind())
		}
		return types.Bool(strings.Contains(string(hay), string(needle))), nil
	default:
		return nil, fmt.Errorf("unknown function %q", fn)
	}
}

func wantArgs(fn string, args []types.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s takes %d argument(s), got %d", fn, n, len(args))
	}
	return nil
}

func toBag(v types.Value) (*types.Bag, error) {
	if b, ok := v.(*types.Bag); ok {
		return b, nil
	}
	elems, err := types.Elements(v)
	if err != nil {
		return nil, err
	}
	return types.NewBag(elems...), nil
}

func aggregate(fn string, coll types.Value) (types.Value, error) {
	elems, err := types.Elements(coll)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", fn, err)
	}
	switch fn {
	case "sum", "avg":
		if len(elems) == 0 {
			if fn == "sum" {
				return types.Int(0), nil
			}
			return types.Null{}, nil
		}
		total := 0.0
		allInt := true
		for _, e := range elems {
			n, ok := types.Numeric(e)
			if !ok {
				return nil, fmt.Errorf("%s: non-numeric element %s", fn, e)
			}
			if e.Kind() != types.KindInt {
				allInt = false
			}
			total += n
		}
		if fn == "avg" {
			return types.Float(total / float64(len(elems))), nil
		}
		if allInt {
			return types.Int(int64(total)), nil
		}
		return types.Float(total), nil
	default: // min, max
		if len(elems) == 0 {
			return types.Null{}, nil
		}
		best := elems[0]
		for _, e := range elems[1:] {
			c, err := types.Compare(e, best)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fn, err)
			}
			if (fn == "min" && c < 0) || (fn == "max" && c > 0) {
				best = e
			}
		}
		return best, nil
	}
}

func evalSelect(x *Select, env *Env, r Resolver) (types.Value, error) {
	var out []types.Value
	var loop func(i int, env *Env) error
	loop = func(i int, env *Env) error {
		if i == len(x.From) {
			if x.Where != nil {
				cond, err := Eval(x.Where, env, r)
				if err != nil {
					return err
				}
				keep, err := types.Truthy(cond)
				if err != nil {
					return err
				}
				if !keep {
					return nil
				}
			}
			v, err := Eval(x.Proj, env, r)
			if err != nil {
				return err
			}
			out = append(out, v)
			return nil
		}
		dom, err := Eval(x.From[i].Domain, env, r)
		if err != nil {
			return err
		}
		var loopErr error
		if err := types.RangeElements(dom, func(e types.Value) bool {
			loopErr = loop(i+1, env.Bind(x.From[i].Var, e))
			return loopErr == nil
		}); err != nil {
			return fmt.Errorf("from %s: %w", x.From[i].Var, err)
		}
		return loopErr
	}
	if err := loop(0, env); err != nil {
		return nil, err
	}
	result := types.NewBag(out...)
	if x.Distinct {
		result = types.BagDistinct(result)
	}
	return result, nil
}
