package oql

import (
	"fmt"
	"strconv"
	"strings"

	"disco/internal/types"
)

// ParseQuery parses a complete OQL query expression, allowing one trailing
// semicolon.
func ParseQuery(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr(precSelect)
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseDefine parses a view definition: define name as query.
func ParseDefine(src string) (*Define, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	d, err := p.parseDefine()
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return d, nil
}

type parser struct {
	toks []token
	i    int
}

func newParser(src string) (*parser, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek(n int) token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.i+n]
}
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &SyntaxError{Off: p.cur().off, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) acceptKeyword(s string) bool {
	if p.isKeyword(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(s string) error {
	if !p.acceptKeyword(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) expectEOF() error {
	if p.cur().kind != tokEOF {
		return p.errorf("unexpected %s after end of query", p.cur())
	}
	return nil
}

func (p *parser) parseDefine() (*Define, error) {
	if err := p.expectKeyword("define"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	q, err := p.parseExpr(precSelect)
	if err != nil {
		return nil, err
	}
	return &Define{Name: name, Query: q}, nil
}

// parseExpr parses an expression whose operators all bind at least as
// tightly as minPrec (precedence climbing).
func (p *parser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parseUnary(minPrec)
	if err != nil {
		return nil, err
	}
	for {
		op, prec, width, ok := p.peekBinary()
		if !ok || prec < minPrec {
			return left, nil
		}
		for k := 0; k < width; k++ {
			p.advance()
		}
		right, err := p.parseExpr(prec + 1) // all binary ops are left-associative
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

// peekBinary identifies a binary operator at the cursor. width is the number
// of tokens the operator occupies (always 1 with the current lexer).
func (p *parser) peekBinary() (op BinaryOp, prec, width int, ok bool) {
	t := p.cur()
	var o BinaryOp
	switch {
	case t.kind == tokKeyword && t.text == "or":
		o = OpOr
	case t.kind == tokKeyword && t.text == "and":
		o = OpAnd
	case t.kind == tokKeyword && t.text == "in":
		o = OpIn
	case t.kind == tokIdent && strings.EqualFold(t.text, "mod") && p.canStartExpr(p.peek(1)):
		o = OpMod
	case t.kind == tokPunct:
		switch t.text {
		case "=":
			o = OpEq
		case "!=", "<>":
			o = OpNe
		case "<":
			o = OpLt
		case "<=":
			o = OpLe
		case ">":
			o = OpGt
		case ">=":
			o = OpGe
		case "+":
			o = OpAdd
		case "-":
			o = OpSub
		case "*":
			o = OpMul
		case "/":
			o = OpDiv
		default:
			return 0, 0, 0, false
		}
	default:
		return 0, 0, 0, false
	}
	return o, o.precedence(), 1, true
}

func (p *parser) parseUnary(minPrec int) (Expr, error) {
	switch {
	case p.isKeyword("not"):
		p.advance()
		x, err := p.parseExpr(precNot)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	case p.isPunct("-"):
		p.advance()
		x, err := p.parseExpr(precUnary)
		if err != nil {
			return nil, err
		}
		return foldNeg(x), nil
	default:
		return p.parsePostfix()
	}
}

// foldNeg folds unary minus over numeric literals so that -5 parses as the
// literal it prints as.
func foldNeg(x Expr) Expr {
	if lit, ok := x.(*Literal); ok {
		switch v := lit.Val.(type) {
		case types.Int:
			return &Literal{Val: types.Int(-v)}
		case types.Float:
			return &Literal{Val: types.Float(-v)}
		}
	}
	return &Unary{Op: OpNeg, X: x}
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("."):
			p.advance()
			field, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &Path{Base: e, Field: field}
		case p.isPunct("*") && p.isStarClosure(e):
			p.advance()
			e.(*Ident).Star = true
		default:
			return e, nil
		}
	}
}

// isStarClosure decides whether a "*" after e is the DISCO subtype-closure
// suffix rather than multiplication. It is a closure exactly when the base
// is a plain identifier and the token after "*" cannot start an expression
// (multiplication always needs a right operand).
func (p *parser) isStarClosure(e Expr) bool {
	id, ok := e.(*Ident)
	if !ok || id.Star {
		return false
	}
	return !p.canStartExpr(p.peek(1))
}

// canStartExpr reports whether t can begin an expression.
func (p *parser) canStartExpr(t token) bool {
	switch t.kind {
	case tokIdent, tokInt, tokFloat, tokString:
		return true
	case tokKeyword:
		switch t.text {
		case "select", "not", "true", "false", "nil", "distinct":
			return true
		}
		return false
	case tokPunct:
		return t.text == "(" || t.text == "-"
	default:
		return false
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q: %v", t.text, err)
		}
		return &Literal{Val: types.Int(n)}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q: %v", t.text, err)
		}
		return &Literal{Val: types.Float(f)}, nil
	case tokString:
		p.advance()
		return &Literal{Val: types.Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "true":
			p.advance()
			return &Literal{Val: types.Bool(true)}, nil
		case "false":
			p.advance()
			return &Literal{Val: types.Bool(false)}, nil
		case "nil":
			p.advance()
			return &Literal{Val: types.Null{}}, nil
		case "select":
			return p.parseSelect()
		case "distinct":
			// distinct(expr) is a call form; the keyword otherwise only
			// appears in "select distinct".
			if p.peek(1).kind == tokPunct && p.peek(1).text == "(" {
				return p.parseCall()
			}
			return nil, p.errorf("unexpected keyword %s", t)
		default:
			return nil, p.errorf("unexpected keyword %s", t)
		}
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr(precSelect)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s", t)
	case tokIdent:
		if p.peek(1).kind == tokPunct && p.peek(1).text == "(" {
			if strings.EqualFold(t.text, "struct") {
				return p.parseStructCtor()
			}
			return p.parseCall()
		}
		p.advance()
		return &Ident{Name: t.text}, nil
	default:
		return nil, p.errorf("unexpected %s", t)
	}
}

func (p *parser) parseCall() (Expr, error) {
	name := strings.ToLower(p.advance().text)
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.isPunct(")") {
		for {
			a, err := p.parseExpr(precSelect)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return foldCall(&Call{Fn: name, Args: args}), nil
}

// foldCall turns bag/list/set constructors with all-literal arguments into
// collection literals, making the printed form of data canonical.
func foldCall(c *Call) Expr {
	switch c.Fn {
	case "bag", "list", "set":
	default:
		return c
	}
	vals := make([]types.Value, 0, len(c.Args))
	for _, a := range c.Args {
		lit, ok := a.(*Literal)
		if !ok {
			return c
		}
		vals = append(vals, lit.Val)
	}
	switch c.Fn {
	case "bag":
		return &Literal{Val: types.NewBag(vals...)}
	case "list":
		return &Literal{Val: types.NewList(vals...)}
	default:
		return &Literal{Val: types.NewSet(vals...)}
	}
}

func (p *parser) parseStructCtor() (Expr, error) {
	p.advance() // struct
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var fields []StructField
	if !p.isPunct(")") {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr(precSelect)
			if err != nil {
				return nil, err
			}
			fields = append(fields, StructField{Name: name, Expr: e})
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return foldStructCtor(&StructCtor{Fields: fields}), nil
}

// foldStructCtor turns struct constructors with all-literal fields into
// struct literals.
func foldStructCtor(s *StructCtor) Expr {
	fields := make([]types.Field, 0, len(s.Fields))
	for _, f := range s.Fields {
		lit, ok := f.Expr.(*Literal)
		if !ok {
			return s
		}
		fields = append(fields, types.Field{Name: f.Name, Value: lit.Val})
	}
	return &Literal{Val: types.NewStruct(fields...)}
}

func (p *parser) parseSelect() (Expr, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.acceptKeyword("distinct") {
		sel.Distinct = true
	}
	proj, err := p.parseExpr(precOr)
	if err != nil {
		return nil, err
	}
	sel.Proj = proj
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		// Domains parse above and/or and comparison level so that the
		// "and" binding separator (paper §2.2.3 writes
		// "from x in person0 and y in person1") is never swallowed.
		dom, err := p.parseExpr(precAdd)
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, Binding{Var: v, Domain: dom})
		if !p.moreBindings() {
			break
		}
		p.advance() // the "," or "and" separator
	}
	if p.acceptKeyword("where") {
		w, err := p.parseExpr(precOr)
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	return sel, nil
}

// moreBindings reports whether the cursor sits on a binding separator that
// is followed by another "ident in ..." binding. The lookahead resolves the
// ambiguity between from-clause commas and argument-list commas, and between
// the "and" separator and a boolean operator.
func (p *parser) moreBindings() bool {
	t := p.cur()
	isSep := (t.kind == tokPunct && t.text == ",") || (t.kind == tokKeyword && t.text == "and")
	if !isSep {
		return false
	}
	return p.peek(1).kind == tokIdent && p.peek(2).kind == tokKeyword && p.peek(2).text == "in"
}
