package oql

import (
	"strings"
	"testing"

	"disco/internal/types"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	return e
}

// TestParsePaperQueries parses every query that appears in the paper.
func TestParsePaperQueries(t *testing.T) {
	queries := []string{
		// §1.2
		`select x.name from x in person where x.salary > 10`,
		// §1.3 partial answer
		`union(select y.name from y in person0 where y.salary > 10, bag("Sam"))`,
		// §2.1
		`select x.name from x in person0 where x.salary > 10`,
		`select x.name from x in union(person0, person1) where x.salary > 10`,
		`flatten(select x.e from x in metaextent where x.interface = Person)`,
		// §2.2.3 views
		`select struct(name: x.name, salary: x.salary + y.salary)
		 from x in person0 and y in person1
		 where x.id = y.id`,
		`select struct(name: x.name,
		               salary: sum(select z.salary from z in person where x.id = z.id))
		 from x in person*`,
		// §2.3 dissimilar structures
		`bag(select struct(name: x.name, salary: x.salary) from x in person,
		     select struct(name: x.name, salary: x.regular + x.consult) from x in persontwo0)`,
		// §4 partial answer without where
		`union(select x.name from x in person0, bag("Sam"))`,
	}
	for _, q := range queries {
		if _, err := ParseQuery(q); err != nil {
			t.Errorf("paper query failed to parse: %q: %v", q, err)
		}
	}
}

func TestParseSelectShape(t *testing.T) {
	e := mustParse(t, `select x.name from x in person where x.salary > 10`)
	sel, ok := e.(*Select)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(sel.From) != 1 || sel.From[0].Var != "x" {
		t.Errorf("from = %+v", sel.From)
	}
	if p, ok := sel.Proj.(*Path); !ok || p.Field != "name" {
		t.Errorf("proj = %s", sel.Proj)
	}
	w, ok := sel.Where.(*Binary)
	if !ok || w.Op != OpGt {
		t.Fatalf("where = %s", sel.Where)
	}
	if lit, ok := w.R.(*Literal); !ok || !lit.Val.Equal(types.Int(10)) {
		t.Errorf("where rhs = %s", w.R)
	}
}

func TestParseBindingSeparators(t *testing.T) {
	// "," and "and" are interchangeable binding separators (§2.2.3).
	a := mustParse(t, `select x.name from x in a, y in b where x.id = y.id`)
	b := mustParse(t, `select x.name from x in a and y in b where x.id = y.id`)
	if !Equal(a, b) {
		t.Errorf("comma and and-separated bindings should parse identically:\n%s\n%s", a, b)
	}
	sel := a.(*Select)
	if len(sel.From) != 2 {
		t.Fatalf("bindings = %+v", sel.From)
	}
}

func TestParseAndIsNotABindingWhenWherePrefixed(t *testing.T) {
	// The "and" here is a boolean connective inside where, not a separator.
	e := mustParse(t, `select x.a from x in c where x.a = 1 and x.b = 2`)
	sel := e.(*Select)
	if len(sel.From) != 1 {
		t.Fatalf("bindings = %+v", sel.From)
	}
	w, ok := sel.Where.(*Binary)
	if !ok || w.Op != OpAnd {
		t.Errorf("where = %s", sel.Where)
	}
}

func TestParseStarClosure(t *testing.T) {
	e := mustParse(t, `select x.name from x in person* where x.salary > 10`)
	sel := e.(*Select)
	id, ok := sel.From[0].Domain.(*Ident)
	if !ok || !id.Star || id.Name != "person" {
		t.Fatalf("domain = %s", sel.From[0].Domain)
	}
}

func TestStarVersusMultiplication(t *testing.T) {
	// "salary * 2" is multiplication; "person*" in a domain is closure.
	e := mustParse(t, `select x.salary * 2 from x in person*`)
	sel := e.(*Select)
	mul, ok := sel.Proj.(*Binary)
	if !ok || mul.Op != OpMul {
		t.Fatalf("proj = %s", sel.Proj)
	}
	id := sel.From[0].Domain.(*Ident)
	if !id.Star {
		t.Errorf("domain should be star closure")
	}
	// Star closure inside parens and before commas.
	e2 := mustParse(t, `union(person*, student)`)
	call := e2.(*Call)
	if id := call.Args[0].(*Ident); !id.Star {
		t.Errorf("person* before comma should be closure")
	}
	e3 := mustParse(t, `count((person*))`)
	if _, err := ParseQuery(e3.String()); err != nil {
		t.Errorf("reprint of %s failed: %v", e3, err)
	}
	// Multiplication between identifiers still works.
	e4 := mustParse(t, `select x.a * x.b from x in c`)
	if mul := e4.(*Select).Proj.(*Binary); mul.Op != OpMul {
		t.Errorf("a * b should be multiplication")
	}
}

func TestParseLiteralFolding(t *testing.T) {
	tests := []struct {
		src  string
		want types.Value
	}{
		{`bag("Mary", "Sam")`, types.NewBag(types.Str("Mary"), types.Str("Sam"))},
		{`list(1, 2, 3)`, types.NewList(types.Int(1), types.Int(2), types.Int(3))},
		{`set(1, 1)`, types.NewSet(types.Int(1))},
		{`struct(name: "Mary", salary: 200)`,
			types.NewStruct(types.Field{Name: "name", Value: types.Str("Mary")}, types.Field{Name: "salary", Value: types.Int(200)})},
		{`-5`, types.Int(-5)},
		{`-2.5`, types.Float(-2.5)},
		{`bag(struct(a: 1), struct(a: 2))`,
			types.NewBag(
				types.NewStruct(types.Field{Name: "a", Value: types.Int(1)}),
				types.NewStruct(types.Field{Name: "a", Value: types.Int(2)}))},
	}
	for _, tt := range tests {
		e := mustParse(t, tt.src)
		lit, ok := e.(*Literal)
		if !ok {
			t.Errorf("%q should fold to a literal, got %T", tt.src, e)
			continue
		}
		if !lit.Val.Equal(tt.want) {
			t.Errorf("%q = %s, want %s", tt.src, lit.Val, tt.want)
		}
	}
	// Mixed constructor args stay calls.
	e := mustParse(t, `bag(x, 1)`)
	if _, ok := e.(*Call); !ok {
		t.Errorf("bag with non-literal args should stay a call, got %T", e)
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct{ src, canonical string }{
		{`1 + 2 * 3`, `1 + 2 * 3`},
		{`(1 + 2) * 3`, `(1 + 2) * 3`},
		{`a or b and c`, `a or b and c`},
		{`(a or b) and c`, `(a or b) and c`},
		{`not a = b`, `not a = b`},     // not binds looser than =
		{`(not a) = b`, `(not a) = b`}, // forced grouping preserved
		{`1 - 2 - 3`, `1 - 2 - 3`},     // left assoc
		{`1 - (2 - 3)`, `1 - (2 - 3)`}, // right grouping preserved
		{`x.a in bag(1, 2)`, `x.a in bag(1, 2)`},
		{`a mod 2 = 0`, `a mod 2 = 0`},
	}
	for _, tt := range tests {
		e := mustParse(t, tt.src)
		if got := e.String(); got != tt.canonical {
			t.Errorf("%q prints as %q, want %q", tt.src, got, tt.canonical)
		}
	}
}

func TestParseDefine(t *testing.T) {
	d, err := ParseDefine(`define double as
		select struct(name: x.name, salary: x.salary + y.salary)
		from x in person0 and y in person1
		where x.id = y.id;`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "double" {
		t.Errorf("name = %s", d.Name)
	}
	if _, ok := d.Query.(*Select); !ok {
		t.Errorf("query = %T", d.Query)
	}
	// Round trip.
	d2, err := ParseDefine(d.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !Equal(d.Query, d2.Query) || d.Name != d2.Name {
		t.Errorf("define round trip failed: %s vs %s", d, d2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`select`,
		`select x from`,
		`select x from x`,
		`select x from x in`,
		`select x.name from x in person where`,
		`1 +`,
		`(1`,
		`"unterminated`,
		`struct(a 1)`,
		`bag(1,`,
		`select x from x in a, from`,
		`define as x`,
		`define v x`,
		`x.`,
		`@`,
		`"bad \q escape"`,
		`select x from x in a; extra`,
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	e := mustParse(t, `select x.name -- project the name
		from x in person -- the implicit extent
		where x.salary > 10`)
	if _, ok := e.(*Select); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestParseNumbers(t *testing.T) {
	tests := []struct {
		src  string
		want types.Value
	}{
		{`42`, types.Int(42)},
		{`2.5`, types.Float(2.5)},
		{`1e3`, types.Float(1000)},
		{`1.5e-2`, types.Float(0.015)},
		{`2.0`, types.Float(2)},
	}
	for _, tt := range tests {
		e := mustParse(t, tt.src)
		lit := e.(*Literal)
		if !lit.Val.Equal(tt.want) || lit.Val.Kind() != tt.want.Kind() {
			t.Errorf("%q = %s (%s), want %s (%s)", tt.src, lit.Val, lit.Val.Kind(), tt.want, tt.want.Kind())
		}
	}
}

func TestFreeNames(t *testing.T) {
	e := mustParse(t, `select struct(a: x.name, t: sum(select z.salary from z in person where x.id = z.id))
		from x in person0 and y in view1 where x.id = y.id`)
	got := FreeNames(e)
	want := []string{"person0", "view1", "person"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("FreeNames = %v, want %v", got, want)
	}
	// Bound variables are not free.
	e2 := mustParse(t, `select x.a from x in c where x.b > 1`)
	if got := FreeNames(e2); len(got) != 1 || got[0] != "c" {
		t.Errorf("FreeNames = %v, want [c]", got)
	}
	// A domain may reference an earlier binding without it being free.
	e3 := mustParse(t, `select y from x in c, y in x.children`)
	if got := FreeNames(e3); len(got) != 1 || got[0] != "c" {
		t.Errorf("FreeNames = %v, want [c]", got)
	}
}

func TestSelectDistinct(t *testing.T) {
	e := mustParse(t, `select distinct x.name from x in person`)
	if !e.(*Select).Distinct {
		t.Error("distinct flag not set")
	}
	if got := e.String(); got != `select distinct x.name from x in person` {
		t.Errorf("print = %q", got)
	}
}
