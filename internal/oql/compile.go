package oql

import (
	"fmt"
	"sync"

	"disco/internal/types"
)

// This file implements the compiled evaluator: Compile lowers an OQL AST
// once into a tree of Go closures that the execution engine calls per tuple,
// instead of re-walking the AST through Eval. The lowering performs
//
//   - constant folding: pure subtrees over literals collapse to their value
//     at compile time (a constant and/or operand short-circuits the branch
//     away entirely, and a constant right side of `in` becomes a prebuilt
//     hash set probed by canonical key);
//   - slot-indexed variable lookup: every free name and every select-bound
//     variable gets a fixed slot in a flat, reusable FlatEnv slice, so
//     binding a tuple writes array elements instead of allocating the
//     linked Env chain nodes the tree-walker uses;
//   - direct field-offset access: each Path node caches the field offset it
//     resolved in the FlatEnv and re-validates it with one name comparison
//     per tuple, falling back to the struct's index only when the tuple
//     layout changes mid-stream.
//
// Programs are immutable and safe for concurrent use; all mutable state
// (slots, offset caches, the canonical-key scratch buffer) lives in the
// FlatEnv, of which each operator instance creates its own. The
// tree-walking Eval stays as the semantic reference: the differential and
// fuzz tests check that Compile agrees with it on value and error outcome.

// compiledFn evaluates one compiled node against a FlatEnv.
type compiledFn func(*FlatEnv) (types.Value, error)

// Program is a compiled expression. It is created once per expression (at
// plan build, cached with the prepared-statement pipeline) and evaluated
// many times, each caller supplying its own FlatEnv.
type Program struct {
	expr   Expr
	fn     compiledFn
	names  []string // free-name slots, in slot order 0..len-1
	nslots int      // free names plus the deepest select-binding nesting
	ncache int      // Path field-offset cache slots
}

// Compile lowers an expression into a Program. The program's variable slots
// are the expression's free names in FreeNames order; bind them per tuple
// with FlatEnv.BindStruct (or individually with FlatEnv.Bind).
func Compile(e Expr) (*Program, error) {
	c := &compiler{}
	c.names = append(c.names, FreeNames(e)...)
	c.maxSlots = len(c.names)
	n, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	return &Program{
		expr:   e,
		fn:     n.fn,
		names:  c.names[:len(c.names):len(c.names)],
		nslots: c.maxSlots,
		ncache: c.ncache,
	}, nil
}

// Expr returns the source expression the program was compiled from.
func (p *Program) Expr() Expr { return p.expr }

// Names returns the program's free names in slot order.
func (p *Program) Names() []string { return p.names }

// NewEnv returns a fresh environment for evaluating the program. A nil
// resolver means no free collection names resolve.
func (p *Program) NewEnv(r Resolver) *FlatEnv {
	if r == nil {
		r = EmptyResolver
	}
	env := &FlatEnv{
		prog:     p,
		slots:    make([]types.Value, p.nslots),
		cache:    make([]int32, p.ncache),
		fieldIdx: make([]int32, len(p.names)),
		resolver: r,
	}
	for i := range env.cache {
		env.cache[i] = -1
	}
	for i := range env.fieldIdx {
		env.fieldIdx[i] = -1
	}
	return env
}

// Eval runs the program. Like the tree-walking Eval, failures surface as
// *EvalError annotated with the program's source expression.
func (p *Program) Eval(env *FlatEnv) (types.Value, error) {
	v, err := p.fn(env)
	if err != nil {
		if _, ok := err.(*EvalError); ok {
			return nil, err
		}
		return nil, &EvalError{Expr: p.expr, Err: err}
	}
	return v, nil
}

// FlatEnv is the mutable evaluation state of one Program instance: a flat
// slot array replacing the allocated Env chain, the per-Path field-offset
// caches, and a reusable canonical-key scratch buffer. A FlatEnv is not
// safe for concurrent use; each operator creates its own.
type FlatEnv struct {
	prog     *Program
	slots    []types.Value
	cache    []int32 // Path inline caches: last field offset, -1 = empty
	fieldIdx []int32 // BindStruct inline caches per free-name slot
	resolver Resolver
	keyer    types.Keyer
}

// Bind sets the i-th free-name slot (order = Program.Names()). A nil value
// unbinds the slot, sending lookups to the resolver.
func (env *FlatEnv) Bind(i int, v types.Value) { env.slots[i] = v }

// BindStruct binds every program variable present as a field of st and
// unbinds the rest — the compiled equivalent of chaining one Env node per
// struct field. Offsets resolved on earlier tuples are revalidated with a
// single name comparison, so a homogeneous stream pays no map lookups.
func (env *FlatEnv) BindStruct(st *types.Struct) {
	for j, name := range env.prog.names {
		if idx := env.fieldIdx[j]; idx >= 0 && int(idx) < st.Len() {
			if f := st.FieldAt(int(idx)); f.Name == name {
				env.slots[j] = f.Value
				continue
			}
		}
		if i, ok := st.IndexOf(name); ok {
			env.fieldIdx[j] = int32(i)
			env.slots[j] = st.FieldAt(i).Value
		} else {
			env.fieldIdx[j] = -1
			env.slots[j] = nil
		}
	}
}

// ProgramCache memoizes Compile per expression node. The mediator attaches
// one to each prepared plan, so re-executing a cached plan reuses the
// compiled programs; it is safe for concurrent use (programs are immutable,
// only the map is guarded).
type ProgramCache struct {
	mu sync.RWMutex
	m  map[any]*Program
}

// NewProgramCache returns an empty cache.
func NewProgramCache() *ProgramCache {
	return &ProgramCache{m: make(map[any]*Program)}
}

// Get returns the compiled program for e, compiling on first use. A nil
// cache compiles without memoizing.
func (c *ProgramCache) Get(e Expr) (*Program, error) {
	return c.GetKeyed(e, func() Expr { return e })
}

// GetKeyed returns the program cached under key, calling mk and compiling
// its expression on first use. It exists for expressions synthesized at
// plan-build time (a projection's struct constructor): the synthesized
// node has a fresh pointer every build, so caching must key on the stable
// plan node that produced it, or the cache would miss — and grow — on
// every execution. A nil cache compiles without memoizing.
func (c *ProgramCache) GetKeyed(key any, mk func() Expr) (*Program, error) {
	if c == nil {
		return Compile(mk())
	}
	c.mu.RLock()
	p, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := Compile(mk())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.m[key] = p
	c.mu.Unlock()
	return p, nil
}

// Len reports the number of cached programs (tests and monitoring).
func (c *ProgramCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// --- compilation ------------------------------------------------------------

// compiler carries the lexical scope (a stack of slot-assigned names) and
// the cache-slot counter through one Compile run.
type compiler struct {
	names    []string // slot i holds names[i]; lookup scans innermost-first
	maxSlots int
	ncache   int
}

func (c *compiler) lookup(name string) (int, bool) {
	for i := len(c.names) - 1; i >= 0; i-- {
		if c.names[i] == name {
			return i, true
		}
	}
	return 0, false
}

func (c *compiler) push(name string) int {
	c.names = append(c.names, name)
	if len(c.names) > c.maxSlots {
		c.maxSlots = len(c.names)
	}
	return len(c.names) - 1
}

func (c *compiler) pop(n int) { c.names = c.names[:len(c.names)-n] }

func (c *compiler) cacheSlot() int {
	c.ncache++
	return c.ncache - 1
}

// cnode is one compiled subtree; konst is non-nil when the subtree folded
// to a constant.
type cnode struct {
	fn    compiledFn
	konst types.Value
}

func constNode(v types.Value) cnode {
	return cnode{fn: func(*FlatEnv) (types.Value, error) { return v, nil }, konst: v}
}

// errNode defers a compile-time-detected evaluation error to run time: the
// tree-walker only fails when the faulty subtree is actually evaluated
// (short-circuiting may skip it), and folding must not change that.
func errNode(err error) cnode {
	return cnode{fn: func(*FlatEnv) (types.Value, error) { return nil, err }}
}

func (c *compiler) compile(e Expr) (cnode, error) {
	switch x := e.(type) {
	case *Literal:
		return constNode(x.Val), nil
	case *Ident:
		return c.compileIdent(x), nil
	case *Path:
		return c.compilePath(x)
	case *Unary:
		return c.compileUnary(x)
	case *Binary:
		return c.compileBinary(x)
	case *StructCtor:
		return c.compileStructCtor(x)
	case *Call:
		return c.compileCall(x)
	case *Select:
		return c.compileSelect(x)
	default:
		return cnode{}, fmt.Errorf("cannot compile %T", e)
	}
}

func (c *compiler) compileIdent(x *Ident) cnode {
	name, star := x.Name, x.Star
	if !star {
		if slot, ok := c.lookup(name); ok {
			return cnode{fn: func(env *FlatEnv) (types.Value, error) {
				if v := env.slots[slot]; v != nil {
					return v, nil
				}
				return env.resolver.Resolve(name, false)
			}}
		}
	}
	return cnode{fn: func(env *FlatEnv) (types.Value, error) {
		return env.resolver.Resolve(name, star)
	}}
}

func (c *compiler) compilePath(x *Path) (cnode, error) {
	base, err := c.compile(x.Base)
	if err != nil {
		return cnode{}, err
	}
	field := x.Field
	if base.konst != nil {
		st, ok := base.konst.(*types.Struct)
		if !ok {
			return errNode(fmt.Errorf("cannot access .%s on %s", field, base.konst.Kind())), nil
		}
		v, ok := st.Get(field)
		if !ok {
			return errNode(fmt.Errorf("no attribute %q in %s", field, base.konst)), nil
		}
		return constNode(v), nil
	}
	slot := c.cacheSlot()
	return cnode{fn: func(env *FlatEnv) (types.Value, error) {
		bv, err := base.fn(env)
		if err != nil {
			return nil, err
		}
		st, ok := bv.(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("cannot access .%s on %s", field, bv.Kind())
		}
		// Inline cache: reuse the offset resolved on the previous tuple when
		// the layout still matches (one name comparison), else fall back to
		// the struct index and remember the new offset.
		if idx := env.cache[slot]; idx >= 0 && int(idx) < st.Len() {
			if f := st.FieldAt(int(idx)); f.Name == field {
				return f.Value, nil
			}
		}
		i, ok := st.IndexOf(field)
		if !ok {
			env.cache[slot] = -1
			return nil, fmt.Errorf("no attribute %q in %s", field, bv)
		}
		env.cache[slot] = int32(i)
		return st.FieldAt(i).Value, nil
	}}, nil
}

func (c *compiler) compileUnary(x *Unary) (cnode, error) {
	sub, err := c.compile(x.X)
	if err != nil {
		return cnode{}, err
	}
	apply := func(v types.Value) (types.Value, error) {
		switch x.Op {
		case OpNot:
			b, err := types.Truthy(v)
			if err != nil {
				return nil, err
			}
			return types.Bool(!b), nil
		case OpNeg:
			switch n := v.(type) {
			case types.Int:
				return types.Int(-n), nil
			case types.Float:
				return types.Float(-n), nil
			default:
				return nil, fmt.Errorf("cannot negate %s", v.Kind())
			}
		default:
			return nil, fmt.Errorf("unknown unary operator")
		}
	}
	if sub.konst != nil {
		v, err := apply(sub.konst)
		if err != nil {
			return errNode(err), nil
		}
		return constNode(v), nil
	}
	return cnode{fn: func(env *FlatEnv) (types.Value, error) {
		v, err := sub.fn(env)
		if err != nil {
			return nil, err
		}
		return apply(v)
	}}, nil
}

func (c *compiler) compileBinary(x *Binary) (cnode, error) {
	l, err := c.compile(x.L)
	if err != nil {
		return cnode{}, err
	}
	r, err := c.compile(x.R)
	if err != nil {
		return cnode{}, err
	}
	if x.Op == OpAnd || x.Op == OpOr {
		return c.compileConnective(x.Op, l, r), nil
	}
	if x.Op == OpIn && l.konst == nil && r.konst != nil {
		// Constant right side: prebuild the membership set keyed by canonical
		// key (identical for model-equal values, so Int 2 matches Float 2
		// exactly as Equal does) and probe it per tuple. A non-collection
		// constant keeps the generic path so the error matches Eval's, and
		// so does a set holding integers beyond float64's exact range,
		// where canonical keys are coarser than Equal.
		set := make(map[string]bool)
		exact := true
		if err := types.RangeElements(r.konst, func(e types.Value) bool {
			exact = exact && canonicalKeyExact(e)
			set[types.CanonicalKey(e)] = true
			return exact
		}); err == nil && exact {
			return cnode{fn: func(env *FlatEnv) (types.Value, error) {
				lv, err := l.fn(env)
				if err != nil {
					return nil, err
				}
				return types.Bool(set[env.keyer.Key(lv)]), nil
			}}, nil
		}
	}
	if l.konst != nil && r.konst != nil {
		v, err := ApplyBinary(x.Op, l.konst, r.konst)
		if err != nil {
			return errNode(err), nil
		}
		return constNode(v), nil
	}
	op := x.Op
	return cnode{fn: func(env *FlatEnv) (types.Value, error) {
		lv, err := l.fn(env)
		if err != nil {
			return nil, err
		}
		rv, err := r.fn(env)
		if err != nil {
			return nil, err
		}
		return ApplyBinary(op, lv, rv)
	}}, nil
}

// compileConnective lowers and/or with the tree-walker's short-circuit
// semantics: a constant left operand either decides the result at compile
// time or reduces the node to the right operand's truthiness.
func (c *compiler) compileConnective(op BinaryOp, l, r cnode) cnode {
	truthiness := func(n cnode) cnode {
		if n.konst != nil {
			b, err := types.Truthy(n.konst)
			if err != nil {
				return errNode(err)
			}
			return constNode(types.Bool(b))
		}
		return cnode{fn: func(env *FlatEnv) (types.Value, error) {
			v, err := n.fn(env)
			if err != nil {
				return nil, err
			}
			b, err := types.Truthy(v)
			if err != nil {
				return nil, err
			}
			return types.Bool(b), nil
		}}
	}
	if l.konst != nil {
		lb, err := types.Truthy(l.konst)
		if err != nil {
			return errNode(err)
		}
		if (op == OpAnd && !lb) || (op == OpOr && lb) {
			return constNode(types.Bool(lb))
		}
		return truthiness(r)
	}
	rt := truthiness(r)
	return cnode{fn: func(env *FlatEnv) (types.Value, error) {
		lv, err := l.fn(env)
		if err != nil {
			return nil, err
		}
		lb, err := types.Truthy(lv)
		if err != nil {
			return nil, err
		}
		if (op == OpAnd && !lb) || (op == OpOr && lb) {
			return types.Bool(lb), nil
		}
		return rt.fn(env)
	}}
}

// canonicalKeyExact reports whether canonical-key equality coincides with
// model equality for v. Keys render numerics through float64, so integers
// at or beyond 2^53 can collide with unequal neighbors; everything else
// keys exactly.
func canonicalKeyExact(v types.Value) bool {
	const maxExact = types.Int(1) << 53
	switch x := v.(type) {
	case types.Int:
		return x > -maxExact && x < maxExact
	case *types.Struct:
		for i := 0; i < x.Len(); i++ {
			if !canonicalKeyExact(x.FieldAt(i).Value) {
				return false
			}
		}
		return true
	case *types.Bag, *types.List, *types.Set:
		exact := true
		_ = types.RangeElements(x, func(e types.Value) bool {
			exact = canonicalKeyExact(e)
			return exact
		})
		return exact
	default:
		return true
	}
}

func (c *compiler) compileStructCtor(x *StructCtor) (cnode, error) {
	fns := make([]cnode, len(x.Fields))
	names := make([]string, len(x.Fields))
	allConst := true
	for i, f := range x.Fields {
		sub, err := c.compile(f.Expr)
		if err != nil {
			return cnode{}, err
		}
		fns[i] = sub
		names[i] = f.Name
		if sub.konst == nil {
			allConst = false
		}
	}
	if allConst {
		fields := make([]types.Field, len(fns))
		for i, sub := range fns {
			fields[i] = types.Field{Name: names[i], Value: sub.konst}
		}
		return constNode(types.NewStruct(fields...)), nil
	}
	return cnode{fn: func(env *FlatEnv) (types.Value, error) {
		fields := make([]types.Field, len(fns))
		for i, sub := range fns {
			v, err := sub.fn(env)
			if err != nil {
				return nil, err
			}
			fields[i] = types.Field{Name: names[i], Value: v}
		}
		return types.StructFromFields(fields), nil
	}}, nil
}

func (c *compiler) compileCall(x *Call) (cnode, error) {
	fns := make([]cnode, len(x.Args))
	allConst := true
	for i, a := range x.Args {
		sub, err := c.compile(a)
		if err != nil {
			return cnode{}, err
		}
		fns[i] = sub
		if sub.konst == nil {
			allConst = false
		}
	}
	fn := x.Fn
	if allConst {
		args := make([]types.Value, len(fns))
		for i, sub := range fns {
			args[i] = sub.konst
		}
		v, err := ApplyCall(fn, args)
		if err != nil {
			return errNode(err), nil
		}
		return constNode(v), nil
	}
	return cnode{fn: func(env *FlatEnv) (types.Value, error) {
		args := make([]types.Value, len(fns))
		for i, sub := range fns {
			v, err := sub.fn(env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return ApplyCall(fn, args)
	}}, nil
}

func (c *compiler) compileSelect(x *Select) (cnode, error) {
	domains := make([]cnode, len(x.From))
	slots := make([]int, len(x.From))
	vars := make([]string, len(x.From))
	for i, b := range x.From {
		// A domain may reference earlier bindings, so compile it before
		// pushing its own variable.
		sub, err := c.compile(b.Domain)
		if err != nil {
			c.pop(i)
			return cnode{}, err
		}
		domains[i] = sub
		slots[i] = c.push(b.Var)
		vars[i] = b.Var
	}
	var where, proj cnode
	var err error
	if x.Where != nil {
		where, err = c.compile(x.Where)
		if err != nil {
			c.pop(len(x.From))
			return cnode{}, err
		}
	}
	proj, err = c.compile(x.Proj)
	c.pop(len(x.From))
	if err != nil {
		return cnode{}, err
	}
	distinct := x.Distinct
	hasWhere := x.Where != nil
	return cnode{fn: func(env *FlatEnv) (types.Value, error) {
		var out []types.Value
		var loop func(i int) error
		loop = func(i int) error {
			if i == len(domains) {
				if hasWhere {
					cond, err := where.fn(env)
					if err != nil {
						return err
					}
					keep, err := types.Truthy(cond)
					if err != nil {
						return err
					}
					if !keep {
						return nil
					}
				}
				v, err := proj.fn(env)
				if err != nil {
					return err
				}
				out = append(out, v)
				return nil
			}
			dom, err := domains[i].fn(env)
			if err != nil {
				return err
			}
			var loopErr error
			if err := types.RangeElements(dom, func(e types.Value) bool {
				env.slots[slots[i]] = e
				loopErr = loop(i + 1)
				return loopErr == nil
			}); err != nil {
				return fmt.Errorf("from %s: %w", vars[i], err)
			}
			return loopErr
		}
		if err := loop(0); err != nil {
			return nil, err
		}
		result := types.NewBag(out...)
		if distinct {
			result = types.BagDistinct(result)
		}
		return result, nil
	}}, nil
}
