package oql

import (
	"strings"
	"sync"
	"testing"

	"disco/internal/types"
)

// runCompiled parses, compiles and evaluates src with the tuple's fields
// bound as variables (nil tuple means no bindings).
func runCompiled(t *testing.T, src string, tuple *types.Struct, r Resolver) (types.Value, error) {
	t.Helper()
	e, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	prog, err := Compile(e)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	env := prog.NewEnv(r)
	if tuple != nil {
		env.BindStruct(tuple)
	}
	return prog.Eval(env)
}

// runReference evaluates src the tree-walking way, with the tuple's fields
// bound through an Env chain exactly as the physical layer's evalWith did.
func runReference(t *testing.T, src string, tuple *types.Struct, r Resolver) (types.Value, error) {
	t.Helper()
	e, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	var env *Env
	if tuple != nil {
		for _, f := range tuple.Fields() {
			env = env.Bind(f.Name, f.Value)
		}
	}
	return Eval(e, env, r)
}

// diffCompiled checks that the compiled evaluator agrees with the reference
// on value (including kind) or on failing.
func diffCompiled(t *testing.T, src string, tuple *types.Struct, r Resolver) {
	t.Helper()
	want, wantErr := runReference(t, src, tuple, r)
	got, gotErr := runCompiled(t, src, tuple, r)
	switch {
	case (wantErr == nil) != (gotErr == nil):
		t.Errorf("%q: reference err = %v, compiled err = %v", src, wantErr, gotErr)
	case wantErr == nil:
		if !got.Equal(want) || got.Kind() != want.Kind() {
			t.Errorf("%q: reference = %s (%s), compiled = %s (%s)", src, want, want.Kind(), got, got.Kind())
		}
	}
}

func testTuple() *types.Struct {
	return types.NewStruct(
		types.Field{Name: "x", Value: types.NewStruct(
			types.Field{Name: "id", Value: types.Int(1)},
			types.Field{Name: "name", Value: types.Str("Mary")},
			types.Field{Name: "salary", Value: types.Int(200)},
		)},
		types.Field{Name: "n", Value: types.Int(7)},
		types.Field{Name: "f", Value: types.Float(2.5)},
		types.Field{Name: "s", Value: types.Str("abc")},
		types.Field{Name: "b", Value: types.Bool(true)},
		types.Field{Name: "kids", Value: types.NewBag(types.Int(1), types.Int(2))},
	)
}

// TestCompiledAgreesWithEval is the differential corpus: every expression
// class, evaluated both ways over the same bindings and resolver.
func TestCompiledAgreesWithEval(t *testing.T) {
	exprs := []string{
		// Scalars, arithmetic, folding candidates.
		`1 + 2 * 3`,
		`1 + 2.5`,
		`7 / 2`, `7.0 / 2`, `7 mod 2`,
		`"a" + "b"`,
		`-(1 + 2)`, `-f`,
		`1 / 0`, `1 mod 0`, `1.0 mod 2`, `"a" + 1`, `-"a"`,
		// Variables and paths.
		`n + 1`, `x.salary > 10`, `x.name`, `x.nosuch`, `n.field`,
		`x.salary * 2 + n`,
		// Comparisons and connectives.
		`1 < 2`, `1 = 1.0`, `s != "abc"`, `b and n > 3`, `b or 1 = "x"`,
		`false and (1 = "x")`, `true or (1 = "x")`, `1 and true`,
		`not b`, `not n`,
		// in, with constant and dynamic right sides.
		`2 in bag(1, 2, 3)`, `5 in bag(1, 2, 3)`, `f in bag(1, 2.5)`,
		`n in bag(1, 7)`, `n in kids`, `n in 6`, `1 in bag()`,
		`x.id in bag(1, 2)`,
		// Calls.
		`count(kids)`, `sum(kids)`, `avg(kids)`, `min(kids)`, `max(kids)`,
		`exists(kids)`, `element(bag(7))`, `element(kids)`,
		`count(distinct(bag(1, 1, 2)))`,
		`flatten(bag(bag(1), bag(2, 3)))`,
		`union(bag(1), kids)`, `sort(kids)`, `contains(s, "bc")`,
		`contains(s, n)`, `nosuchfn(1)`, `count(1)`,
		// Struct construction.
		`struct(a: 1 + 1, b: x.name)`, `struct(a: 1).a`, `struct(a: 1).b`,
		// Selects: plain, filtered, distinct, dependent, nested, correlated.
		`select k from k in kids`,
		`select k * 2 from k in kids where k > 1`,
		`select distinct k from k in bag(1, 1, 2)`,
		`select m from g in groups, m in g.members`,
		`select struct(nm: p.name, t: sum(select z.salary from z in person where z.name = p.name)) from p in person`,
		`select (select k from k in bag(2)) from k in bag(1)`,
		`select k from k in 5`,
		`select k from k in kids where k`,
		// Free names through the resolver, star form.
		`count(person)`, `count(nosuchextent)`,
		`select p.name from p in person* where p.salary > 60`,
	}
	groups := types.NewBag(
		types.NewStruct(
			types.Field{Name: "label", Value: types.Str("g1")},
			types.Field{Name: "members", Value: types.NewBag(types.Str("a"), types.Str("b"))},
		),
	)
	r := ResolverFunc(func(name string, star bool) (types.Value, error) {
		if name == "groups" {
			return groups, nil
		}
		return paperData().Resolve(name, star)
	})
	tuple := testTuple()
	for _, src := range exprs {
		diffCompiled(t, src, tuple, r)
	}
	// The same corpus with no bindings at all: every name goes through the
	// resolver, errors included.
	for _, src := range []string{`1 + 2`, `x.salary`, `count(person)`, `n in bag(1)`} {
		diffCompiled(t, src, nil, r)
	}
}

// TestCompiledConstantFolding: folded programs still defer evaluation
// errors to run time, and short-circuit folding drops failing branches
// exactly like the tree-walker.
func TestCompiledConstantFolding(t *testing.T) {
	// A pure constant expression needs no resolver and no bindings.
	v, err := runCompiled(t, `(1 + 2) * 3 - count(bag(1, 1))`, nil, nil)
	if err != nil || !v.Equal(types.Int(7)) {
		t.Errorf("folded constant = %v, %v", v, err)
	}
	// Folding must not turn a runtime error into a compile error...
	e, err := ParseQuery(`1 / 0`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(e)
	if err != nil {
		t.Fatalf("compile of 1/0 must succeed (error is a runtime property): %v", err)
	}
	// ...but evaluating it fails like the reference.
	if _, err := prog.Eval(prog.NewEnv(nil)); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("eval of folded 1/0: err = %v", err)
	}
	// Short-circuit folding: the dead branch's error never surfaces.
	v, err = runCompiled(t, `false and (1 / 0 = 1)`, nil, nil)
	if err != nil || !v.Equal(types.Bool(false)) {
		t.Errorf("short-circuit fold = %v, %v", v, err)
	}
}

// TestCompiledFieldOffsetCache: the inline caches must survive tuples whose
// layouts differ mid-stream (different field order, missing fields).
func TestCompiledFieldOffsetCache(t *testing.T) {
	e, err := ParseQuery(`x.a + x.b`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	env := prog.NewEnv(nil)
	mk := func(fields ...types.Field) *types.Struct { return types.NewStruct(fields...) }
	tuples := []struct {
		tuple *types.Struct
		want  types.Value
		fail  bool
	}{
		{mk(types.Field{Name: "x", Value: mk(
			types.Field{Name: "a", Value: types.Int(1)},
			types.Field{Name: "b", Value: types.Int(2)})}), types.Int(3), false},
		// Reversed layout: cached offsets are stale and must re-resolve.
		{mk(types.Field{Name: "x", Value: mk(
			types.Field{Name: "b", Value: types.Int(20)},
			types.Field{Name: "a", Value: types.Int(10)})}), types.Int(30), false},
		// Field gone: must error, not serve a stale offset.
		{mk(types.Field{Name: "x", Value: mk(
			types.Field{Name: "a", Value: types.Int(1)})}), nil, true},
		// And recover on the next well-formed tuple.
		{mk(types.Field{Name: "x", Value: mk(
			types.Field{Name: "a", Value: types.Int(5)},
			types.Field{Name: "b", Value: types.Int(6)})}), types.Int(11), false},
	}
	for i, tt := range tuples {
		env.BindStruct(tt.tuple)
		v, err := prog.Eval(env)
		if tt.fail {
			if err == nil {
				t.Errorf("tuple %d: expected error, got %s", i, v)
			}
			continue
		}
		if err != nil || !v.Equal(tt.want) {
			t.Errorf("tuple %d: got %v, %v, want %s", i, v, err, tt.want)
		}
	}
}

// TestProgramConcurrentUse: one Program shared by many goroutines, each
// with its own FlatEnv — the prepared-statement cache's sharing pattern.
// Run under -race.
func TestProgramConcurrentUse(t *testing.T) {
	e, err := ParseQuery(`select k * n from k in kids where k in bag(1, 2, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	tuple := testTuple()
	want, err := runReference(t, `select k * n from k in kids where k in bag(1, 2, 3)`, tuple, EmptyResolver)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := prog.NewEnv(EmptyResolver)
			for i := 0; i < 200; i++ {
				env.BindStruct(tuple)
				v, err := prog.Eval(env)
				if err != nil || !v.Equal(want) {
					t.Errorf("concurrent eval = %v, %v", v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestProgramCache: same expression node compiles once; distinct nodes get
// distinct programs; the nil cache still compiles.
func TestProgramCache(t *testing.T) {
	cache := NewProgramCache()
	e, err := ParseQuery(`n + 1`)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := cache.Get(e)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cache.Get(e)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cache must return the memoized program")
	}
	var nilCache *ProgramCache
	p3, err := nilCache.Get(e)
	if err != nil || p3 == nil {
		t.Errorf("nil cache Get = %v, %v", p3, err)
	}
}

// TestCompiledSelectShadowing mirrors TestEnvShadowing for the slot-indexed
// environment: an inner binding must shadow an outer slot of the same name
// and a tuple-bound variable.
func TestCompiledSelectShadowing(t *testing.T) {
	tuple := types.NewStruct(types.Field{Name: "k", Value: types.Int(99)})
	diffCompiled(t, `select (select k from k in bag(2)) from k in bag(1)`, tuple, EmptyResolver)
	diffCompiled(t, `k + element(select k from k in bag(5))`, tuple, EmptyResolver)
}

// TestCompiledInBigIntegers: canonical keys render numerics as float64, so
// the prebuilt-set fast path must back off for integers beyond 2^53 —
// where key equality is coarser than Equal.
func TestCompiledInBigIntegers(t *testing.T) {
	for _, src := range []string{
		`9007199254740993 in bag(9007199254740992)`, // 2^53+1 vs 2^53: unequal, keys collide
		`9007199254740992 in bag(9007199254740992)`,
		`n in bag(9007199254740992, 1)`,
		`7 in bag(1, 7)`,
	} {
		diffCompiled(t, src, testTuple(), EmptyResolver)
	}
}
