// Package oql implements the OQL subset that DISCO uses: select-from-where
// over extents, struct construction, bag/list/set literals, aggregates,
// union/flatten, views (define ... as ...) and the DISCO extension T* for
// subtype-extent closure (paper §2).
//
// The package contains a lexer, a recursive-descent parser, a canonical
// printer (every AST prints back to parseable OQL — the closure property
// partial answers depend on, paper §4), and a reference evaluator used by
// the runtime for scalar expressions and by tests as an executable
// specification.
package oql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokPunct // operators and delimiters
)

// token is one lexical token with its source offset (used for adjacency
// checks and error positions).
type token struct {
	kind tokenKind
	text string
	off  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords are reserved words. Function-like forms (union, flatten, bag,
// count, ...) are deliberately not keywords; they parse as calls.
var keywords = map[string]bool{
	"select": true, "from": true, "in": true, "where": true,
	"and": true, "or": true, "not": true,
	"define": true, "as": true, "distinct": true,
	"true": true, "false": true, "nil": true,
}

// SyntaxError is a lexical or grammatical error with its byte offset.
type SyntaxError struct {
	Off int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("oql: offset %d: %s", e.Off, e.Msg)
}

// lexer splits input into tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, off: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[strings.ToLower(text)] {
			return token{kind: tokKeyword, text: strings.ToLower(text), off: start}, nil
		}
		return token{kind: tokIdent, text: text, off: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '"':
		return l.lexString()
	default:
		return l.lexPunct()
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// Line comment, SQL/OQL style.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	kind := tokInt
	if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			kind = tokFloat
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		} else {
			l.pos = mark // the e belongs to a following identifier
		}
	}
	return token{kind: kind, text: l.src[start:l.pos], off: start}, nil
}

// lexString scans a double-quoted literal and decodes it with
// strconv.Unquote, so every escape form strconv.Quote can emit parses back
// — the closure property requires print(parse(s)) to round trip even for
// control characters and non-ASCII text.
func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, &SyntaxError{Off: l.pos, Msg: "unterminated escape"}
			}
			l.pos += 2
		case '"':
			l.pos++
			text, err := strconv.Unquote(l.src[start:l.pos])
			if err != nil {
				return token{}, &SyntaxError{Off: start, Msg: fmt.Sprintf("bad string literal: %v", err)}
			}
			return token{kind: tokString, text: text, off: start}, nil
		default:
			l.pos++
		}
	}
	return token{}, &SyntaxError{Off: start, Msg: "unterminated string literal"}
}

// twoCharPuncts lists the multi-character operators, longest first.
var twoCharPuncts = []string{"<=", ">=", "!=", "<>", ":="}

func (l *lexer) lexPunct() (token, error) {
	start := l.pos
	for _, p := range twoCharPuncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			return token{kind: tokPunct, text: p, off: start}, nil
		}
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '.', ';', ':', '=', '<', '>', '+', '-', '*', '/':
		l.pos++
		return token{kind: tokPunct, text: string(c), off: start}, nil
	default:
		return token{}, &SyntaxError{Off: start, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

// tokenize lexes the whole input.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// isIdentPart accepts '@' inside (not starting) an identifier: extent@repo
// names one shard of a horizontally partitioned extent, and residual queries
// over partitioned extents must round-trip through the parser.
func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '@'
}
