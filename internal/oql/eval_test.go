package oql

import (
	"strings"
	"testing"

	"disco/internal/types"
)

// paperData resolves person, person0 and person1 with the data from §1.2:
// r0 holds Mary (salary 200), r1 holds Sam (salary 50).
func paperData() Resolver {
	mary := types.NewStruct(
		types.Field{Name: "id", Value: types.Int(1)},
		types.Field{Name: "name", Value: types.Str("Mary")},
		types.Field{Name: "salary", Value: types.Int(200)},
	)
	sam := types.NewStruct(
		types.Field{Name: "id", Value: types.Int(2)},
		types.Field{Name: "name", Value: types.Str("Sam")},
		types.Field{Name: "salary", Value: types.Int(50)},
	)
	p0 := types.NewBag(mary)
	p1 := types.NewBag(sam)
	return ResolverFunc(func(name string, star bool) (types.Value, error) {
		switch name {
		case "person0":
			return p0, nil
		case "person1":
			return p1, nil
		case "person":
			return types.BagUnion(p0, p1), nil
		default:
			return EmptyResolver.Resolve(name, star)
		}
	})
}

func evalSrc(t *testing.T, src string, r Resolver) types.Value {
	t.Helper()
	e, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, nil, r)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

// TestPaperIntroductionQuery reproduces the §1.2 example: the answer is
// Bag("Mary", "Sam").
func TestPaperIntroductionQuery(t *testing.T) {
	got := evalSrc(t, `select x.name from x in person where x.salary > 10`, paperData())
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !got.Equal(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestPaperUnionQuery reproduces the explicit-extent §2.1 example.
func TestPaperUnionQuery(t *testing.T) {
	got := evalSrc(t, `select x.name from x in union(person0, person1) where x.salary > 10`, paperData())
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !got.Equal(want) {
		t.Errorf("got %s, want %s", got, want)
	}
	// Against one extent only: Bag("Mary").
	got = evalSrc(t, `select x.name from x in person0 where x.salary > 10`, paperData())
	if !got.Equal(types.NewBag(types.Str("Mary"))) {
		t.Errorf("person0 only: got %s", got)
	}
}

// TestPaperPartialAnswerResubmission evaluates the §1.3 partial answer when
// r0 is available again: it must produce the full answer.
func TestPaperPartialAnswerResubmission(t *testing.T) {
	got := evalSrc(t, `union(select y.name from y in person0 where y.salary > 10, bag("Sam"))`, paperData())
	want := types.NewBag(types.Str("Mary"), types.Str("Sam"))
	if !got.Equal(want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestPaperDoubleView evaluates the §2.2.3 reconciliation view over two
// sources that share ids.
func TestPaperDoubleView(t *testing.T) {
	shared := func(id int64, name string, sal int64) *types.Struct {
		return types.NewStruct(
			types.Field{Name: "id", Value: types.Int(id)},
			types.Field{Name: "name", Value: types.Str(name)},
			types.Field{Name: "salary", Value: types.Int(sal)},
		)
	}
	p0 := types.NewBag(shared(1, "Mary", 200), shared(2, "Sam", 10))
	p1 := types.NewBag(shared(1, "Mary", 55), shared(3, "Ann", 70))
	r := ResolverFunc(func(name string, _ bool) (types.Value, error) {
		switch name {
		case "person0":
			return p0, nil
		case "person1":
			return p1, nil
		}
		return nil, &EvalError{Expr: &Ident{Name: name}, Err: errUnknown}
	})
	got := evalSrc(t, `select struct(name: x.name, salary: x.salary + y.salary)
		from x in person0 and y in person1
		where x.id = y.id`, r)
	want := types.NewBag(types.NewStruct(
		types.Field{Name: "name", Value: types.Str("Mary")},
		types.Field{Name: "salary", Value: types.Int(255)},
	))
	if !got.Equal(want) {
		t.Errorf("double view: got %s, want %s", got, want)
	}
}

var errUnknown = &SyntaxError{Msg: "unknown name"}

func TestScalarOperators(t *testing.T) {
	tests := []struct {
		src  string
		want types.Value
	}{
		{`1 + 2`, types.Int(3)},
		{`1 + 2.5`, types.Float(3.5)},
		{`7 / 2`, types.Int(3)},
		{`7.0 / 2`, types.Float(3.5)},
		{`7 mod 2`, types.Int(1)},
		{`"a" + "b"`, types.Str("ab")},
		{`2 * 3 + 1`, types.Int(7)},
		{`-(1 + 2)`, types.Int(-3)},
		{`1 < 2`, types.Bool(true)},
		{`"a" < "b"`, types.Bool(true)},
		{`1 = 1.0`, types.Bool(true)},
		{`1 != 2`, types.Bool(true)},
		{`true and false`, types.Bool(false)},
		{`true or false`, types.Bool(true)},
		{`not false`, types.Bool(true)},
		{`2 in bag(1, 2, 3)`, types.Bool(true)},
		{`5 in bag(1, 2, 3)`, types.Bool(false)},
		{`count(bag(1, 1, 2))`, types.Int(3)},
		{`sum(bag(1, 2, 3))`, types.Int(6)},
		{`sum(bag(1, 2.5))`, types.Float(3.5)},
		{`sum(bag())`, types.Int(0)},
		{`avg(bag(1, 2, 3))`, types.Float(2)},
		{`min(bag(3, 1, 2))`, types.Int(1)},
		{`max(bag("a", "c", "b"))`, types.Str("c")},
		{`element(bag(7))`, types.Int(7)},
		{`exists(bag(1))`, types.Bool(true)},
		{`exists(bag())`, types.Bool(false)},
		{`count(distinct(bag(1, 1, 2)))`, types.Int(2)},
		{`flatten(bag(bag(1), bag(2, 3)))`, types.NewBag(types.Int(1), types.Int(2), types.Int(3))},
		{`union(bag(1), bag(1, 2))`, types.NewBag(types.Int(1), types.Int(1), types.Int(2))},
		{`union(set(1), list(2))`, types.NewBag(types.Int(1), types.Int(2))},
		{`struct(a: 1 + 1)`, types.NewStruct(types.Field{Name: "a", Value: types.Int(2)})},
	}
	for _, tt := range tests {
		got := evalSrc(t, tt.src, EmptyResolver)
		if !got.Equal(tt.want) {
			t.Errorf("%q = %s, want %s", tt.src, got, tt.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side would fail; short-circuit must skip it.
	if got := evalSrc(t, `false and (1 = "x")`, EmptyResolver); !got.Equal(types.Bool(false)) {
		t.Errorf("short-circuit and: %s", got)
	}
	if got := evalSrc(t, `true or (1 = "x")`, EmptyResolver); !got.Equal(types.Bool(true)) {
		t.Errorf("short-circuit or: %s", got)
	}
	// Non-boolean condition is an error even short-circuited on the left.
	if _, err := evalErr(`1 and true`, EmptyResolver); err == nil {
		t.Error("1 and true should fail")
	}
}

func evalErr(src string, r Resolver) (types.Value, error) {
	e, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Eval(e, nil, r)
}

func TestEvalErrors(t *testing.T) {
	bad := []struct {
		src  string
		frag string
	}{
		{`1 / 0`, "division by zero"},
		{`1 mod 0`, "modulo by zero"},
		{`1.0 mod 2`, "mod requires integers"},
		{`"a" + 1`, "cannot add"},
		{`1 < "a"`, "cannot compare"},
		{`-"a"`, "cannot negate"},
		{`x.name`, "unknown name"},
		{`count(1)`, "not a collection"},
		{`element(bag(1, 2))`, "2 elements"},
		{`element(bag())`, "0 elements"},
		{`sum(bag("a"))`, "non-numeric"},
		{`nosuchfn(1)`, "unknown function"},
		{`select x.name from x in 5`, "not a collection"},
		{`5 in 6`, "not a collection"},
		{`flatten(bag(1))`, "not a collection"},
		{`struct(a: 1).b`, "no attribute"},
		{`count(bag(1), bag(2))`, "1 argument"},
		{`select x from x in bag(1) where x`, "not boolean"},
	}
	for _, tt := range bad {
		_, err := evalErr(tt.src, EmptyResolver)
		if err == nil {
			t.Errorf("%q should fail", tt.src)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("%q error = %q, want fragment %q", tt.src, err, tt.frag)
		}
	}
}

func TestAggregatesOnEmpty(t *testing.T) {
	for _, src := range []string{`min(bag())`, `max(bag())`, `avg(bag())`} {
		got := evalSrc(t, src, EmptyResolver)
		if got.Kind() != types.KindNull {
			t.Errorf("%q = %s, want nil", src, got)
		}
	}
}

func TestDependentBindings(t *testing.T) {
	// The second binding ranges over an attribute of the first.
	groups := types.NewBag(
		types.NewStruct(
			types.Field{Name: "label", Value: types.Str("g1")},
			types.Field{Name: "members", Value: types.NewBag(types.Str("a"), types.Str("b"))},
		),
		types.NewStruct(
			types.Field{Name: "label", Value: types.Str("g2")},
			types.Field{Name: "members", Value: types.NewBag(types.Str("c"))},
		),
	)
	r := ResolverFunc(func(name string, _ bool) (types.Value, error) {
		if name == "groups" {
			return groups, nil
		}
		return nil, errUnknown
	})
	got := evalSrc(t, `select m from g in groups, m in g.members`, r)
	want := types.NewBag(types.Str("a"), types.Str("b"), types.Str("c"))
	if !got.Equal(want) {
		t.Errorf("dependent bindings: got %s, want %s", got, want)
	}
}

func TestSelectDistinctEval(t *testing.T) {
	got := evalSrc(t, `select distinct x from x in bag(1, 1, 2)`, EmptyResolver)
	if !got.Equal(types.NewBag(types.Int(1), types.Int(2))) {
		t.Errorf("distinct: %s", got)
	}
}

func TestNestedAggregateQuery(t *testing.T) {
	// The §2.2.3 multiple view shape: a correlated aggregate subquery.
	got := evalSrc(t, `select struct(name: x.name,
			total: sum(select z.salary from z in person where z.name = x.name))
		from x in person0`, paperData())
	want := types.NewBag(types.NewStruct(
		types.Field{Name: "name", Value: types.Str("Mary")},
		types.Field{Name: "total", Value: types.Int(200)},
	))
	if !got.Equal(want) {
		t.Errorf("nested aggregate: got %s, want %s", got, want)
	}
}

func TestEnvShadowing(t *testing.T) {
	// An inner binding shadows an outer one of the same name.
	got := evalSrc(t, `select (select x from x in bag(2)) from x in bag(1)`, EmptyResolver)
	want := types.NewBag(types.NewBag(types.Int(2)))
	if !got.Equal(want) {
		t.Errorf("shadowing: got %s, want %s", got, want)
	}
}

func TestResolverSeesStarFlag(t *testing.T) {
	var gotStar bool
	r := ResolverFunc(func(name string, star bool) (types.Value, error) {
		gotStar = star
		return types.NewBag(), nil
	})
	if _, err := evalErr(`select x from x in person*`, r); err != nil {
		t.Fatal(err)
	}
	if !gotStar {
		t.Error("star flag should reach the resolver")
	}
}

func TestSortBuiltin(t *testing.T) {
	got := evalSrc(t, `sort(bag(3, 1, 2))`, EmptyResolver)
	if !got.Equal(types.NewList(types.Int(1), types.Int(2), types.Int(3))) {
		t.Errorf("sort = %s", got)
	}
	// Strings order lexically.
	got = evalSrc(t, `sort(bag("b", "a"))`, EmptyResolver)
	if !got.Equal(types.NewList(types.Str("a"), types.Str("b"))) {
		t.Errorf("sort strings = %s", got)
	}
	// Structs fall back to canonical-key order: stable and deterministic.
	got = evalSrc(t, `sort(bag(struct(a: 2), struct(a: 1)))`, EmptyResolver)
	l := got.(*types.List)
	if v, _ := l.At(0).(*types.Struct).Get("a"); !v.Equal(types.Int(1)) {
		t.Errorf("struct sort = %s", got)
	}
	// Errors.
	if _, err := evalErr(`sort(5)`, EmptyResolver); err == nil {
		t.Error("sort of a scalar should fail")
	}
	if _, err := evalErr(`sort(bag(), bag())`, EmptyResolver); err == nil {
		t.Error("sort arity should be checked")
	}
}
