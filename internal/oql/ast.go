package oql

import (
	"fmt"
	"strings"

	"disco/internal/types"
)

// Expr is a node of the OQL abstract syntax tree. Every expression prints
// back to parseable OQL via String; Precedence drives parenthesization so
// that parse(print(e)) reproduces e.
type Expr interface {
	// String renders the expression in canonical OQL.
	String() string
	// Precedence returns the binding strength of the node's top operator;
	// larger binds tighter.
	Precedence() int
}

// Operator precedence levels, loosest first. These are shared by the parser
// and the printer.
const (
	precSelect = 1
	precOr     = 2
	precAnd    = 3
	precNot    = 4
	precCmp    = 5
	precAdd    = 6
	precMul    = 7
	precUnary  = 8
	precPath   = 9
	precAtom   = 10
)

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	OpOr BinaryOp = iota + 1
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIn
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the OQL spelling of the operator.
func (op BinaryOp) String() string {
	switch op {
	case OpOr:
		return "or"
	case OpAnd:
		return "and"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "in"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "mod"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// precedence returns the precedence level of the operator.
func (op BinaryOp) precedence() int {
	switch op {
	case OpOr:
		return precOr
	case OpAnd:
		return precAnd
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpIn:
		return precCmp
	case OpAdd, OpSub:
		return precAdd
	default:
		return precMul
	}
}

// UnaryOp enumerates unary operators.
type UnaryOp uint8

// Unary operators.
const (
	OpNot UnaryOp = iota + 1
	OpNeg
)

// Ident references a named collection (an extent, a view, or a bound
// variable). Star marks the DISCO T* syntax that closes over subtype
// extents (paper §2.2.1).
type Ident struct {
	Name string
	Star bool
}

// Precedence implements Expr.
func (*Ident) Precedence() int { return precAtom }

// String implements Expr.
func (e *Ident) String() string {
	if e.Star {
		return e.Name + "*"
	}
	return e.Name
}

// Literal is an embedded constant value. Collection and struct literals are
// what let answers carry data (paper §4: answers combine a residual query
// with a bag of data).
type Literal struct {
	Val types.Value
}

// Precedence implements Expr. Negative numeric literals print with a sign
// and therefore bind like a unary expression.
func (e *Literal) Precedence() int {
	if n, ok := types.Numeric(e.Val); ok && n < 0 {
		return precUnary
	}
	return precAtom
}

// String implements Expr.
func (e *Literal) String() string { return e.Val.String() }

// Path is attribute access, x.name.
type Path struct {
	Base  Expr
	Field string
}

// Precedence implements Expr.
func (*Path) Precedence() int { return precPath }

// String implements Expr.
func (e *Path) String() string {
	return childString(e.Base, precPath) + "." + e.Field
}

// Unary is a prefix operator application.
type Unary struct {
	Op UnaryOp
	X  Expr
}

// Precedence implements Expr.
func (e *Unary) Precedence() int {
	if e.Op == OpNot {
		return precNot
	}
	return precUnary
}

// String implements Expr.
func (e *Unary) String() string {
	if e.Op == OpNot {
		return "not " + childString(e.X, precNot)
	}
	s := childString(e.X, precUnary)
	if strings.HasPrefix(s, "-") {
		// Double negation must not print "--", which lexes as a comment.
		s = "(" + s + ")"
	}
	return "-" + s
}

// Binary is an infix operator application.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Precedence implements Expr.
func (e *Binary) Precedence() int { return e.Op.precedence() }

// String implements Expr.
func (e *Binary) String() string {
	p := e.Op.precedence()
	// Left-associative: the right child needs parens at equal precedence.
	return childString(e.L, p) + " " + e.Op.String() + " " + childString(e.R, p+1)
}

// StructField is one named field of a struct constructor.
type StructField struct {
	Name string
	Expr Expr
}

// StructCtor is the OQL struct(name: e1, ...) constructor.
type StructCtor struct {
	Fields []StructField
}

// Precedence implements Expr.
func (*StructCtor) Precedence() int { return precAtom }

// String implements Expr.
func (e *StructCtor) String() string {
	var b strings.Builder
	b.WriteString("struct(")
	for i, f := range e.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteString(": ")
		b.WriteString(f.Expr.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Call is a function-style form: union, flatten, bag, list, set, count,
// sum, min, max, avg, element. Function names are case-insensitive in the
// parser and stored lowercase.
type Call struct {
	Fn   string
	Args []Expr
}

// Precedence implements Expr.
func (*Call) Precedence() int { return precAtom }

// String implements Expr.
func (e *Call) String() string {
	var b strings.Builder
	b.WriteString(e.Fn)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Binding is one variable binding of a from clause (x in person).
type Binding struct {
	Var    string
	Domain Expr
}

// Select is the select-from-where expression. Proj is the projection
// expression over the bound variables; Where may be nil.
type Select struct {
	Distinct bool
	Proj     Expr
	From     []Binding
	Where    Expr
}

// Precedence implements Expr.
func (*Select) Precedence() int { return precSelect }

// String implements Expr.
func (e *Select) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if e.Distinct {
		b.WriteString("distinct ")
	}
	// A select-valued projection must be parenthesized or it would swallow
	// the enclosing from clause on reparse; a projection starting with
	// "distinct(" must be parenthesized or it would reparse as the
	// distinct modifier.
	proj := childString(e.Proj, precOr)
	if !e.Distinct && strings.HasPrefix(proj, "distinct(") {
		proj = "(" + proj + ")"
	}
	b.WriteString(proj)
	b.WriteString(" from ")
	for i, bind := range e.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(bind.Var)
		b.WriteString(" in ")
		// Domains parse above comparison level (so the "and" binding
		// separator is unambiguous); print with matching parentheses.
		b.WriteString(childString(bind.Domain, precAdd))
	}
	if e.Where != nil {
		b.WriteString(" where ")
		b.WriteString(e.Where.String())
	}
	return b.String()
}

// Define is the OQL view definition statement: define name as query
// (paper §2.2.3). It is a statement, not an expression.
type Define struct {
	Name  string
	Query Expr
}

// String renders the statement in OQL.
func (d *Define) String() string {
	return "define " + d.Name + " as " + d.Query.String()
}

// childString prints child with parentheses when its precedence is below
// what the context requires.
func childString(child Expr, contextPrec int) string {
	if child.Precedence() < contextPrec {
		return "(" + child.String() + ")"
	}
	return child.String()
}

// Compile-time conformance checks.
var (
	_ Expr = (*Ident)(nil)
	_ Expr = (*Literal)(nil)
	_ Expr = (*Path)(nil)
	_ Expr = (*Unary)(nil)
	_ Expr = (*Binary)(nil)
	_ Expr = (*StructCtor)(nil)
	_ Expr = (*Call)(nil)
	_ Expr = (*Select)(nil)
)

// Equal reports structural equality of two expressions. It is used by the
// round-trip property tests and by plan caching.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *Ident:
		y, ok := b.(*Ident)
		return ok && x.Name == y.Name && x.Star == y.Star
	case *Literal:
		y, ok := b.(*Literal)
		return ok && x.Val.Equal(y.Val) && x.Val.Kind() == y.Val.Kind()
	case *Path:
		y, ok := b.(*Path)
		return ok && x.Field == y.Field && Equal(x.Base, y.Base)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && Equal(x.X, y.X)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *StructCtor:
		y, ok := b.(*StructCtor)
		if !ok || len(x.Fields) != len(y.Fields) {
			return false
		}
		for i := range x.Fields {
			if x.Fields[i].Name != y.Fields[i].Name || !Equal(x.Fields[i].Expr, y.Fields[i].Expr) {
				return false
			}
		}
		return true
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Fn != y.Fn || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Select:
		y, ok := b.(*Select)
		if !ok || x.Distinct != y.Distinct || len(x.From) != len(y.From) {
			return false
		}
		if !Equal(x.Proj, y.Proj) {
			return false
		}
		for i := range x.From {
			if x.From[i].Var != y.From[i].Var || !Equal(x.From[i].Domain, y.From[i].Domain) {
				return false
			}
		}
		switch {
		case x.Where == nil && y.Where == nil:
			return true
		case x.Where == nil || y.Where == nil:
			return false
		default:
			return Equal(x.Where, y.Where)
		}
	default:
		return false
	}
}

// FreeNames reports the free collection names referenced by e: identifiers
// that are not bound by an enclosing from clause. The mediator uses it to
// resolve extents and views, and the plan cache uses it for invalidation.
func FreeNames(e Expr) []string {
	seen := map[string]bool{}
	var order []string
	var walk func(e Expr, bound map[string]bool)
	walk = func(e Expr, bound map[string]bool) {
		switch x := e.(type) {
		case *Ident:
			if !bound[x.Name] && !seen[x.Name] {
				seen[x.Name] = true
				order = append(order, x.Name)
			}
		case *Path:
			walk(x.Base, bound)
		case *Unary:
			walk(x.X, bound)
		case *Binary:
			walk(x.L, bound)
			walk(x.R, bound)
		case *StructCtor:
			for _, f := range x.Fields {
				walk(f.Expr, bound)
			}
		case *Call:
			for _, a := range x.Args {
				walk(a, bound)
			}
		case *Select:
			inner := make(map[string]bool, len(bound)+len(x.From))
			for k := range bound {
				inner[k] = true
			}
			for _, b := range x.From {
				// Domains may reference earlier bindings.
				walk(b.Domain, inner)
				inner[b.Var] = true
			}
			walk(x.Proj, inner)
			if x.Where != nil {
				walk(x.Where, inner)
			}
		}
	}
	walk(e, map[string]bool{})
	return order
}
