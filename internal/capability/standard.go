package capability

// OpSet is a convenience description of a wrapper's capabilities from which
// Standard builds the corresponding grammar. It covers the lattice the
// paper discusses: which logical operators are supported, whether they
// compose, which comparison operators predicates may use, and whether
// boolean connectives and arithmetic are available inside predicates.
type OpSet struct {
	Get      bool
	Project  bool
	Select   bool
	Join     bool
	Union    bool
	Distinct bool

	// Compose permits operators to take operator expressions (not just
	// get(SOURCE)) as inputs — the difference between the paper's two
	// example grammars.
	Compose bool

	// Comparisons lists the comparison terminals predicates may use
	// (TokEq, TokLt, ...). Nil means all comparisons including IN.
	Comparisons []string

	// Connectives enables and/or/not in predicates.
	Connectives bool

	// Arithmetic enables +,-,*,/,mod and unary minus in predicate operands.
	Arithmetic bool
}

// FullOpSet returns the capabilities of a complete SQL-class wrapper.
func FullOpSet() OpSet {
	return OpSet{
		Get: true, Project: true, Select: true, Join: true,
		Union: true, Distinct: true, Compose: true,
		Connectives: true, Arithmetic: true,
	}
}

// ScanOpSet returns the weakest useful wrapper: get only.
func ScanOpSet() OpSet { return OpSet{Get: true} }

// allComparisons is the default comparison set.
var allComparisons = []string{TokEq, TokNe, TokLt, TokLe, TokGt, TokGe, TokIn}

// Standard builds the grammar for an operator set. The result is a plain
// Grammar: wrappers with needs beyond the standard lattice return a
// hand-written grammar instead (Parse accepts the paper's notation).
func Standard(ops OpSet) *Grammar {
	g := &Grammar{Start: "a"}
	add := func(head string, body ...string) {
		g.Prods = append(g.Prods, Production{Head: head, Body: body})
	}

	inner := "s" // symbol for operator inputs
	if !ops.Compose {
		inner = "leaf"
	}

	type opRule struct {
		enabled bool
		head    string
		body    []string
	}
	rules := []opRule{
		{ops.Get, "opget", []string{TokGet, TokOpen, TokSource, TokClose}},
		{ops.Project, "opproject", []string{TokProject, TokOpen, "alist", TokComma, inner, TokClose}},
		{ops.Select, "opselect", []string{TokSelect, TokOpen, "pred", TokComma, inner, TokClose}},
		{ops.Join, "opjoin", []string{TokJoin, TokOpen, inner, TokComma, inner, TokComma, "jpred", TokClose}},
		{ops.Union, "opunion", []string{TokUnion, TokOpen, "ulist", TokClose}},
		{ops.Distinct, "opdistinct", []string{TokDistinct, TokOpen, inner, TokClose}},
	}

	needPred := false
	needAlist := false
	needUlist := false
	for _, r := range rules {
		if !r.enabled {
			continue
		}
		add("a", r.head)
		add(r.head, r.body...)
		if ops.Compose {
			add("s", r.head)
		}
		switch r.head {
		case "opselect":
			needPred = true
		case "opjoin":
			needPred = true
		case "opproject":
			needAlist = true
		case "opunion":
			needUlist = true
		}
	}
	if !ops.Compose && ops.Get {
		add("leaf", "opget")
	}

	if needAlist {
		add("alist", TokAttr)
		add("alist", TokAttr, TokComma, "alist")
	}
	if needUlist {
		add("ulist", inner)
		add("ulist", inner, TokComma, "ulist")
	}
	if needPred {
		cmps := ops.Comparisons
		if cmps == nil {
			cmps = allComparisons
		}
		for _, c := range cmps {
			add("pred", c, TokOpen, "operand", TokComma, "operand", TokClose)
		}
		if ops.Connectives {
			add("pred", TokAnd, TokOpen, "pred", TokComma, "pred", TokClose)
			add("pred", TokOr, TokOpen, "pred", TokComma, "pred", TokClose)
			add("pred", TokNot, TokOpen, "pred", TokClose)
		}
		// Cross products serialize their nil predicate as CONST.
		add("jpred", "pred")
		add("jpred", TokConst)
		add("operand", TokAttr)
		add("operand", TokConst)
		if ops.Arithmetic {
			for _, op := range []string{TokAdd, TokSub, TokMul, TokDiv, TokMod} {
				add("operand", op, TokOpen, "operand", TokComma, "operand", TokClose)
			}
			add("operand", TokNeg, TokOpen, "operand", TokClose)
		}
	}
	return g
}
