package capability

import (
	"strings"
	"testing"
)

// FuzzGrammar checks that grammar parsing and Earley recognition never
// panic, whatever grammar text a wrapper returns and whatever token string
// is checked against it.
func FuzzGrammar(f *testing.F) {
	f.Add("a :- get OPEN SOURCE CLOSE", "get OPEN SOURCE CLOSE")
	f.Add("a :- b\nb :- a", "get")
	f.Add("a :- a a a", "")
	f.Add("a :-", "OPEN CLOSE")
	f.Add("x :- y\ny :-", "SOURCE")
	f.Fuzz(func(t *testing.T, grammar, tokens string) {
		g, err := Parse(grammar)
		if err != nil {
			return
		}
		_ = g.Accepts(strings.Fields(tokens)) // must terminate without panic
	})
}
