package capability

import (
	"disco/internal/algebra"
	"disco/internal/oql"
)

// Tokenize serializes a logical expression into the terminal string that
// wrapper grammars are matched against. Operators become their name plus
// OPEN/COMMA/CLOSE structure; sources and attributes become the SOURCE and
// ATTRIBUTE category terminals; predicate operators serialize in prefix
// form (GT OPEN ATTRIBUTE COMMA CONST CLOSE), which lets a grammar state
// precisely which comparison operators and connectives it supports.
func Tokenize(n algebra.Node) []string {
	var out []string
	out = appendNode(out, n)
	return out
}

func appendNode(out []string, n algebra.Node) []string {
	switch x := n.(type) {
	case *algebra.Get:
		return append(out, TokGet, TokOpen, TokSource, TokClose)
	case *algebra.Select:
		out = append(out, TokSelect, TokOpen)
		out = appendExpr(out, x.Pred)
		out = append(out, TokComma)
		out = appendNode(out, x.Input)
		return append(out, TokClose)
	case *algebra.Project:
		out = append(out, TokProject, TokOpen)
		for i, c := range x.Cols {
			if i > 0 {
				out = append(out, TokComma)
			}
			if id, ok := c.Expr.(*oql.Ident); ok && !id.Star {
				out = append(out, TokAttr)
			} else {
				out = appendExpr(out, c.Expr)
			}
		}
		out = append(out, TokComma)
		out = appendNode(out, x.Input)
		return append(out, TokClose)
	case *algebra.Join:
		out = append(out, TokJoin, TokOpen)
		out = appendNode(out, x.L)
		out = append(out, TokComma)
		out = appendNode(out, x.R)
		out = append(out, TokComma)
		if x.Pred != nil {
			out = appendExpr(out, x.Pred)
		} else {
			out = append(out, TokConst)
		}
		return append(out, TokClose)
	case *algebra.Union:
		out = append(out, TokUnion, TokOpen)
		for i, in := range x.Inputs {
			if i > 0 {
				out = append(out, TokComma)
			}
			out = appendNode(out, in)
		}
		return append(out, TokClose)
	case *algebra.Distinct:
		out = append(out, TokDistinct, TokOpen)
		out = appendNode(out, x.Input)
		return append(out, TokClose)
	default:
		return append(out, TokUnsupported)
	}
}

func appendExpr(out []string, e oql.Expr) []string {
	switch x := e.(type) {
	case *oql.Ident:
		if x.Star {
			return append(out, TokUnsupported)
		}
		return append(out, TokAttr)
	case *oql.Literal:
		return append(out, TokConst)
	case *oql.Unary:
		op := TokNeg
		if x.Op == oql.OpNot {
			op = TokNot
		}
		out = append(out, op, TokOpen)
		out = appendExpr(out, x.X)
		return append(out, TokClose)
	case *oql.Binary:
		op, ok := binTok[x.Op]
		if !ok {
			return append(out, TokUnsupported)
		}
		out = append(out, op, TokOpen)
		out = appendExpr(out, x.L)
		out = append(out, TokComma)
		out = appendExpr(out, x.R)
		return append(out, TokClose)
	case *oql.Call:
		if x.Fn == "contains" && len(x.Args) == 2 {
			out = append(out, TokContains, TokOpen)
			out = appendExpr(out, x.Args[0])
			out = append(out, TokComma)
			out = appendExpr(out, x.Args[1])
			return append(out, TokClose)
		}
		return append(out, TokUnsupported)
	default:
		return append(out, TokUnsupported)
	}
}

var binTok = map[oql.BinaryOp]string{
	oql.OpEq:  TokEq,
	oql.OpNe:  TokNe,
	oql.OpLt:  TokLt,
	oql.OpLe:  TokLe,
	oql.OpGt:  TokGt,
	oql.OpGe:  TokGe,
	oql.OpIn:  TokIn,
	oql.OpAnd: TokAnd,
	oql.OpOr:  TokOr,
	oql.OpAdd: TokAdd,
	oql.OpSub: TokSub,
	oql.OpMul: TokMul,
	oql.OpDiv: TokDiv,
	oql.OpMod: TokMod,
}

// AcceptsExpr reports whether the grammar derives the serialization of the
// logical expression. This is the optimizer-facing form of the wrapper
// interface's submit-functionality check.
func (g *Grammar) AcceptsExpr(n algebra.Node) bool {
	return g.Accepts(Tokenize(n))
}
