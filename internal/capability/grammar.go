// Package capability implements the wrapper functionality grammars of paper
// §3.2. A wrapper describes the logical expressions it can evaluate by
// returning a context-free grammar over predefined terminal symbols; the
// optimizer serializes a candidate submit expression into a terminal string
// and asks whether the grammar derives it. This lets a wrapper express not
// only which operators it supports but whether it supports composing them,
// which comparison operators it understands, and so on.
package capability

import (
	"fmt"
	"strings"
)

// Terminal vocabulary. Every symbol here is a terminal in grammars; all
// other symbols are nonterminals. OPEN and CLOSE mean "(" and ")" as in the
// paper.
const (
	TokGet      = "get"
	TokProject  = "project"
	TokSelect   = "select"
	TokJoin     = "join"
	TokUnion    = "union"
	TokDistinct = "distinct"
	TokOpen     = "OPEN"
	TokClose    = "CLOSE"
	TokComma    = "COMMA"
	TokSource   = "SOURCE"
	TokAttr     = "ATTRIBUTE"
	TokConst    = "CONST"
	TokEq       = "EQ"
	TokNe       = "NE"
	TokLt       = "LT"
	TokLe       = "LE"
	TokGt       = "GT"
	TokGe       = "GE"
	TokIn       = "IN"
	TokAnd      = "AND"
	TokOr       = "OR"
	TokNot      = "NOT"
	TokNeg      = "NEG"
	TokAdd      = "ADD"
	TokSub      = "SUB"
	TokMul      = "MUL"
	TokDiv      = "DIV"
	TokMod      = "MOD"
	// TokContains is the substring-search predicate keyword-class servers
	// support (contains(attr, 'text') pushes down as a GREP).
	TokContains = "CONTAINS"
	// TokUnsupported marks constructs outside the terminal vocabulary; no
	// grammar includes it, so expressions containing it are always rejected.
	TokUnsupported = "UNSUPPORTED"
)

var terminals = map[string]bool{
	TokGet: true, TokProject: true, TokSelect: true, TokJoin: true,
	TokUnion: true, TokDistinct: true,
	TokOpen: true, TokClose: true, TokComma: true,
	TokSource: true, TokAttr: true, TokConst: true,
	TokEq: true, TokNe: true, TokLt: true, TokLe: true, TokGt: true, TokGe: true,
	TokIn: true, TokAnd: true, TokOr: true, TokNot: true, TokNeg: true,
	TokAdd: true, TokSub: true, TokMul: true, TokDiv: true, TokMod: true,
	TokContains:    true,
	TokUnsupported: true,
}

// IsTerminal reports whether sym belongs to the predefined terminal
// vocabulary.
func IsTerminal(sym string) bool { return terminals[sym] }

// Production is one grammar rule: Head derives Body (a possibly empty
// sequence of terminals and nonterminals).
type Production struct {
	Head string
	Body []string
}

// String renders the production in the paper's ":-" notation.
func (p Production) String() string {
	if len(p.Body) == 0 {
		return p.Head + " :-"
	}
	return p.Head + " :- " + strings.Join(p.Body, " ")
}

// Grammar is a context-free grammar over the terminal vocabulary. The zero
// value accepts nothing.
type Grammar struct {
	Start string
	Prods []Production
}

// String renders the grammar one production per line, as a wrapper would
// return it from the submit-functionality call.
func (g *Grammar) String() string {
	lines := make([]string, len(g.Prods))
	for i, p := range g.Prods {
		lines[i] = p.String()
	}
	return strings.Join(lines, "\n")
}

// Parse reads a grammar in the paper's notation: one production per line,
// "head :- sym sym ...". The head of the first production is the start
// symbol. Blank lines and "--" comments are ignored. Alternatives are
// separate lines with the same head.
func Parse(src string) (*Grammar, error) {
	g := &Grammar{}
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ":-", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("grammar line %d: missing \":-\"", lineNo+1)
		}
		head := strings.TrimSpace(parts[0])
		if head == "" {
			return nil, fmt.Errorf("grammar line %d: empty head", lineNo+1)
		}
		if IsTerminal(head) {
			return nil, fmt.Errorf("grammar line %d: terminal %q cannot be a head", lineNo+1, head)
		}
		body := strings.Fields(parts[1])
		g.Prods = append(g.Prods, Production{Head: head, Body: body})
		if g.Start == "" {
			g.Start = head
		}
	}
	if g.Start == "" {
		return nil, fmt.Errorf("grammar: no productions")
	}
	return g, g.validate()
}

func (g *Grammar) validate() error {
	heads := map[string]bool{}
	for _, p := range g.Prods {
		heads[p.Head] = true
	}
	for _, p := range g.Prods {
		for _, sym := range p.Body {
			if !IsTerminal(sym) && !heads[sym] {
				return fmt.Errorf("grammar: nonterminal %q has no productions", sym)
			}
		}
	}
	return nil
}

// Accepts reports whether the grammar derives the token string. It runs the
// Earley recognition algorithm, which handles any context-free grammar a
// wrapper might return (ambiguity, left recursion and empty productions
// included). Submit expressions are short, so cubic worst case is
// irrelevant.
func (g *Grammar) Accepts(tokens []string) bool {
	if g.Start == "" {
		return false
	}
	type item struct {
		prod   int // index into g.Prods
		dot    int // position in body
		origin int // chart column where the item started
	}
	n := len(tokens)
	chart := make([][]item, n+1)
	seen := make([]map[item]bool, n+1)
	for i := range seen {
		seen[i] = make(map[item]bool)
	}
	add := func(col int, it item) {
		if !seen[col][it] {
			seen[col][it] = true
			chart[col] = append(chart[col], it)
		}
	}
	for pi, p := range g.Prods {
		if p.Head == g.Start {
			add(0, item{prod: pi})
		}
	}
	for col := 0; col <= n; col++ {
		// chart[col] grows while we scan it.
		for idx := 0; idx < len(chart[col]); idx++ {
			it := chart[col][idx]
			body := g.Prods[it.prod].Body
			if it.dot < len(body) {
				sym := body[it.dot]
				if IsTerminal(sym) {
					// Scanner.
					if col < n && tokens[col] == sym {
						add(col+1, item{prod: it.prod, dot: it.dot + 1, origin: it.origin})
					}
				} else {
					// Predictor.
					for pi, p := range g.Prods {
						if p.Head == sym {
							add(col, item{prod: pi, origin: col})
						}
					}
					// Magic completion for nullable nonterminals (Aycock &
					// Horspool): if sym derives empty directly, advance.
					for _, p := range g.Prods {
						if p.Head == sym && len(p.Body) == 0 {
							add(col, item{prod: it.prod, dot: it.dot + 1, origin: it.origin})
							break
						}
					}
				}
			} else {
				// Completer.
				head := g.Prods[it.prod].Head
				for _, back := range chart[it.origin] {
					b := g.Prods[back.prod].Body
					if back.dot < len(b) && b[back.dot] == head {
						add(col, item{prod: back.prod, dot: back.dot + 1, origin: back.origin})
					}
				}
			}
		}
	}
	for _, it := range chart[n] {
		if g.Prods[it.prod].Head == g.Start && it.dot == len(g.Prods[it.prod].Body) && it.origin == 0 {
			return true
		}
	}
	return false
}
