package capability

import (
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/oql"
)

// The paper's first example grammar (§3.2): get and project of sources, no
// composition.
const paperNoCompose = `
a :- b
a :- c
b :- get OPEN SOURCE CLOSE
c :- project OPEN ATTRIBUTE COMMA b CLOSE
`

// The paper's second example grammar: get and project with composition.
// (The paper writes project's input as s; sources always arrive wrapped in
// get, so s covers b, c and nothing else here.)
const paperCompose = `
a :- b
a :- c
b :- get OPEN s CLOSE
c :- project OPEN ATTRIBUTE COMMA s CLOSE
s :- b
s :- c
s :- SOURCE
`

func ref(extent string) algebra.ExtentRef {
	return algebra.ExtentRef{Extent: extent, Repo: "r0", Source: extent, Attrs: []string{"name", "salary"}}
}

func getNode() algebra.Node { return &algebra.Get{Ref: ref("person0")} }

func projectNode(in algebra.Node) algebra.Node {
	return &algebra.Project{Cols: []algebra.Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}}, Input: in}
}

func selectNode(in algebra.Node) algebra.Node {
	pred, err := oql.ParseQuery(`salary > 10`)
	if err != nil {
		panic(err)
	}
	return &algebra.Select{Pred: pred, Input: in}
}

func TestParsePaperGrammars(t *testing.T) {
	for _, src := range []string{paperNoCompose, paperCompose} {
		g, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		if g.Start != "a" {
			t.Errorf("start = %q", g.Start)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`a b c`,                 // no :-
		`:- x`,                  // empty head
		`get :- SOURCE`,         // terminal head
		`a :- undefined_symbol`, // nonterminal without productions
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	g, err := Parse("a :- get OPEN SOURCE CLOSE -- the only rule\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Prods) != 1 {
		t.Errorf("prods = %d", len(g.Prods))
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		node algebra.Node
		want string
	}{
		{getNode(), "get OPEN SOURCE CLOSE"},
		{projectNode(getNode()), "project OPEN ATTRIBUTE COMMA get OPEN SOURCE CLOSE CLOSE"},
		{selectNode(getNode()), "select OPEN GT OPEN ATTRIBUTE COMMA CONST CLOSE COMMA get OPEN SOURCE CLOSE CLOSE"},
	}
	for _, tt := range tests {
		got := strings.Join(Tokenize(tt.node), " ")
		if got != tt.want {
			t.Errorf("Tokenize(%s) = %q, want %q", tt.node, got, tt.want)
		}
	}
}

// TestPaperGrammarBehaviour reproduces the functional difference between
// the paper's two grammars: both accept get and project-of-get, only the
// compose grammar accepts project over project.
func TestPaperGrammarBehaviour(t *testing.T) {
	noCompose, err := Parse(paperNoCompose)
	if err != nil {
		t.Fatal(err)
	}
	compose, err := Parse(paperCompose)
	if err != nil {
		t.Fatal(err)
	}

	get := getNode()
	projGet := projectNode(get)
	projProj := projectNode(projGet)

	for _, tt := range []struct {
		name string
		g    *Grammar
		n    algebra.Node
		want bool
	}{
		{"nocompose get", noCompose, get, true},
		{"nocompose project(get)", noCompose, projGet, true},
		{"nocompose project(project(get))", noCompose, projProj, false},
		{"nocompose select", noCompose, selectNode(get), false},
		{"compose get", compose, get, true},
		{"compose project(get)", compose, projGet, true},
		{"compose project(project(get))", compose, projProj, true},
		{"compose select", compose, selectNode(get), false},
	} {
		if got := tt.g.AcceptsExpr(tt.n); got != tt.want {
			t.Errorf("%s: AcceptsExpr = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestStandardFull(t *testing.T) {
	g := Standard(FullOpSet())
	pred, err := oql.ParseQuery(`salary > 10 and name != "Bob"`)
	if err != nil {
		t.Fatal(err)
	}
	join := &algebra.Join{
		L:    getNode(),
		R:    &algebra.Get{Ref: ref("manager0")},
		Pred: mustExpr(t, `dept = mdept`),
	}
	accept := []algebra.Node{
		getNode(),
		projectNode(getNode()),
		selectNode(getNode()),
		projectNode(selectNode(getNode())),
		&algebra.Select{Pred: pred, Input: getNode()},
		join,
		&algebra.Union{Inputs: []algebra.Node{getNode(), getNode()}},
		&algebra.Distinct{Input: getNode()},
		&algebra.Join{L: getNode(), R: getNode()}, // cross product
	}
	for _, n := range accept {
		if !g.AcceptsExpr(n) {
			t.Errorf("full grammar should accept %s\ntokens: %v", n, Tokenize(n))
		}
	}
}

func TestStandardScanOnly(t *testing.T) {
	g := Standard(ScanOpSet())
	if !g.AcceptsExpr(getNode()) {
		t.Error("scan wrapper should accept get")
	}
	for _, n := range []algebra.Node{
		projectNode(getNode()),
		selectNode(getNode()),
	} {
		if g.AcceptsExpr(n) {
			t.Errorf("scan wrapper should reject %s", n)
		}
	}
}

func TestStandardNoCompose(t *testing.T) {
	g := Standard(OpSet{Get: true, Project: true, Select: true, Connectives: true})
	if !g.AcceptsExpr(projectNode(getNode())) {
		t.Error("should accept project(get)")
	}
	if !g.AcceptsExpr(selectNode(getNode())) {
		t.Error("should accept select(get)")
	}
	if g.AcceptsExpr(projectNode(selectNode(getNode()))) {
		t.Error("should reject composition project(select(get))")
	}
}

func TestStandardComparisonRestriction(t *testing.T) {
	// A wrapper that only understands equality predicates.
	g := Standard(OpSet{Get: true, Select: true, Compose: true, Comparisons: []string{TokEq}})
	eq := &algebra.Select{Pred: mustExpr(t, `name = "Mary"`), Input: getNode()}
	gt := &algebra.Select{Pred: mustExpr(t, `salary > 10`), Input: getNode()}
	if !g.AcceptsExpr(eq) {
		t.Error("equality select should be accepted")
	}
	if g.AcceptsExpr(gt) {
		t.Error("range select should be rejected")
	}
}

func TestUnsupportedConstructsRejected(t *testing.T) {
	g := Standard(FullOpSet())
	// A predicate containing a nested query serializes to UNSUPPORTED.
	nested := &algebra.Select{Pred: mustExpr(t, `salary > count(q)`), Input: getNode()}
	if g.AcceptsExpr(nested) {
		t.Error("nested query predicates must be rejected even by full wrappers")
	}
	// So does an unknown node type.
	if g.AcceptsExpr(&algebra.Const{}) {
		t.Error("const nodes are not part of the wrapper interface")
	}
}

func TestGrammarStringRoundTrip(t *testing.T) {
	g := Standard(OpSet{Get: true, Project: true, Compose: true})
	parsed, err := Parse(g.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	// Same behaviour on a few probes.
	probes := []algebra.Node{getNode(), projectNode(getNode()), projectNode(projectNode(getNode())), selectNode(getNode())}
	for _, n := range probes {
		if g.AcceptsExpr(n) != parsed.AcceptsExpr(n) {
			t.Errorf("round-tripped grammar disagrees on %s", n)
		}
	}
}

func TestEmptyProductionGrammar(t *testing.T) {
	// Earley must handle empty bodies.
	g, err := Parse("a :- opt get OPEN SOURCE CLOSE\nopt :-")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Accepts([]string{TokGet, TokOpen, TokSource, TokClose}) {
		t.Error("nullable prefix should be accepted")
	}
}

func TestLeftRecursiveGrammar(t *testing.T) {
	// Earley handles left recursion that would loop a naive recursive
	// descent matcher.
	g, err := Parse("a :- a COMMA SOURCE\na :- SOURCE")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Accepts([]string{TokSource, TokComma, TokSource, TokComma, TokSource}) {
		t.Error("left-recursive list should be accepted")
	}
	if g.Accepts([]string{TokComma}) {
		t.Error("bare comma should be rejected")
	}
}

func mustExpr(t *testing.T, src string) oql.Expr {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
