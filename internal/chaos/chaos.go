// Package chaos provides deterministic, scripted fault injection for wire
// transports. A Proxy sits between a client (the mediator's pooled wire
// connections) and a real server, forwarding bytes both ways while the
// currently active Fault distorts them: added latency, connections cut
// mid-answer, short network partitions, corrupted frames, responses that
// trickle out too slowly to beat any deadline. Faults compose over time
// through a Script — a seeded timeline of fault transitions — so a whole
// outage-and-recovery scenario replays identically run after run.
//
// Unlike the wire.Server knobs (SetLatency, SetAvailable), which need the
// server's cooperation and can only model "slow" and "silent", the proxy
// injects faults at the transport where real networks fail, without the
// endpoints' knowledge: the server believes it answered, the client sees
// the torn connection. That is exactly the fault surface the mediator's
// robustness layer — classified transients, retry budgets, replica
// failover, partial evaluation — claims to absorb, and the chaos soak
// tests hold it to that claim.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Fault is one transport distortion. The zero state (nil fault or Healthy)
// forwards bytes unmodified.
type Fault interface {
	String() string
}

// Healthy forwards traffic unmodified.
type Healthy struct{}

// String implements Fault.
func (Healthy) String() string { return "healthy" }

// Latency delays each server->client chunk by D plus a seeded random
// jitter in [0, Jitter) — a congested or wide-area link.
type Latency struct {
	D      time.Duration
	Jitter time.Duration
}

// String implements Fault.
func (f Latency) String() string { return fmt.Sprintf("latency %v±%v", f.D, f.Jitter) }

// Flaky cuts every connection after DropAfter bytes of a response frame
// have been forwarded — the classic mid-answer connection drop. DropAfter
// of zero cuts at the first response byte.
type Flaky struct {
	DropAfter int
}

// String implements Fault.
func (f Flaky) String() string { return fmt.Sprintf("flaky (drop after %dB)", f.DropAfter) }

// Partition severs the network: live connections are killed and new ones
// are accepted and immediately closed (the dialer reaches the socket, the
// exchange dies before a byte moves — how a dropped route looks to a
// client with an established ARP entry).
type Partition struct{}

// String implements Fault.
func (Partition) String() string { return "partition" }

// Corrupt flips bytes inside server->client frames (never the newline
// framing), so the client's decoder sees garbage on an otherwise healthy
// connection.
type Corrupt struct{}

// String implements Fault.
func (Corrupt) String() string { return "corrupt" }

// SlowDrip trickles server->client bytes Chunk at a time with PerChunk
// between writes — a response that is arriving, honestly, but will not
// finish inside any reasonable deadline. Chunk <= 0 means one byte.
type SlowDrip struct {
	Chunk    int
	PerChunk time.Duration
}

// String implements Fault.
func (f SlowDrip) String() string { return fmt.Sprintf("slow-drip %dB/%v", f.Chunk, f.PerChunk) }

// Step is one scripted fault transition: After the offset from the
// script's start, Fault becomes the active fault.
type Step struct {
	After time.Duration
	Fault Fault
}

// Script is a seeded timeline of fault transitions. Steps must be ordered
// by After; the seed drives every random choice the faults make (latency
// jitter, corruption positions), so one seed replays one behaviour.
type Script struct {
	Seed  int64
	Steps []Step
}

// Proxy is one chaos-injected TCP hop in front of a real server.
type Proxy struct {
	target string
	lis    net.Listener
	done   chan struct{}
	wg     sync.WaitGroup

	mu    sync.Mutex
	fault Fault
	rng   *rand.Rand
	conns map[net.Conn]struct{} // live client<->proxy sockets, for partition kills
}

// NewProxy starts a proxy on a free localhost port forwarding to target.
// The seed fixes every random choice the proxy will make.
func NewProxy(target string, seed int64) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		lis:    lis,
		done:   make(chan struct{}),
		fault:  Healthy{},
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the client should dial
// instead of the real server.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Fault returns the currently active fault.
func (p *Proxy) Fault() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fault
}

// SetFault switches the active fault. Switching to Partition kills every
// live connection; other transitions apply to traffic from the next chunk
// on. SetFault is the primitive the Script driver runs on — tests that
// need exact control call it directly.
func (p *Proxy) SetFault(f Fault) {
	if f == nil {
		f = Healthy{}
	}
	p.mu.Lock()
	p.fault = f
	var kill []net.Conn
	if _, isPartition := f.(Partition); isPartition {
		for c := range p.conns {
			kill = append(kill, c)
		}
	}
	p.mu.Unlock()
	for _, c := range kill {
		c.Close()
	}
}

// Run walks the script's timeline in real time: each step's fault becomes
// active at its offset from now. It blocks until the last step has been
// applied or stop is closed; either way the proxy keeps serving with the
// last fault applied. Steps with non-increasing offsets apply immediately
// in order.
func (p *Proxy) Run(stop <-chan struct{}, s Script) {
	start := time.Now()
	for _, step := range s.Steps {
		delay := step.After - time.Since(start)
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return
			case <-p.done:
				t.Stop()
				return
			}
		}
		p.SetFault(step.Fault)
	}
}

// Close stops the proxy and waits for its connection goroutines.
func (p *Proxy) Close() error {
	select {
	case <-p.done:
		return nil
	default:
	}
	close(p.done)
	err := p.lis.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return // listener closed
		}
		if _, partitioned := p.Fault().(Partition); partitioned {
			// The network is down: the dial reached the socket, nothing
			// will cross it.
			conn.Close()
			continue
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// serve bridges one client connection to the target, applying the active
// fault to the server->client direction (where answers — the thing the
// faults are about — travel).
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	p.track(client)
	p.track(upstream)
	defer p.untrack(client)
	defer p.untrack(upstream)

	var pair sync.WaitGroup
	pair.Add(2)
	// client -> server: requests pass through; a partition kills the pair.
	go func() {
		defer pair.Done()
		defer client.Close()
		defer upstream.Close()
		buf := make([]byte, 16*1024)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if _, partitioned := p.Fault().(Partition); partitioned {
					return
				}
				if _, werr := upstream.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	// server -> client: the fault-bearing direction.
	go func() {
		defer pair.Done()
		defer client.Close()
		defer upstream.Close()
		p.forwardResponses(upstream, client)
	}()
	pair.Wait()
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// forwardResponses copies server->client traffic chunk by chunk, applying
// the active fault to each. respBytes tracks the bytes forwarded since the
// current frame began (frames are newline-delimited), so Flaky can cut
// mid-answer rather than between answers.
func (p *Proxy) forwardResponses(upstream, client net.Conn) {
	buf := make([]byte, 16*1024)
	respBytes := 0
	for {
		n, err := upstream.Read(buf)
		if n > 0 {
			if !p.writeFaulted(client, buf[:n], &respBytes) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// writeFaulted forwards one chunk under the active fault; false means the
// connection pair should die.
func (p *Proxy) writeFaulted(client net.Conn, chunk []byte, respBytes *int) bool {
	switch f := p.Fault().(type) {
	case Partition:
		return false
	case Latency:
		d := f.D
		if f.Jitter > 0 {
			p.mu.Lock()
			d += time.Duration(p.rng.Int63n(int64(f.Jitter)))
			p.mu.Unlock()
		}
		if !p.sleep(d) {
			return false
		}
	case Flaky:
		// Forward up to the allowance of the current frame, then cut the
		// connection mid-answer.
		allowed := f.DropAfter - *respBytes
		if allowed < 0 {
			allowed = 0
		}
		if allowed < len(chunk) {
			client.Write(chunk[:allowed])
			return false
		}
	case Corrupt:
		// Flip a few payload bytes (never the framing newline): the frame
		// arrives whole and decodes to garbage.
		corrupted := make([]byte, len(chunk))
		copy(corrupted, chunk)
		p.mu.Lock()
		for i := 0; i < 3; i++ {
			pos := p.rng.Intn(len(corrupted))
			if corrupted[pos] != '\n' {
				corrupted[pos] ^= 0x5a
			}
		}
		p.mu.Unlock()
		chunk = corrupted
	case SlowDrip:
		step := f.Chunk
		if step <= 0 {
			step = 1
		}
		for off := 0; off < len(chunk); off += step {
			end := off + step
			if end > len(chunk) {
				end = len(chunk)
			}
			if !p.sleep(f.PerChunk) {
				return false
			}
			if _, err := client.Write(chunk[off:end]); err != nil {
				return false
			}
		}
		p.account(chunk, respBytes)
		return true
	}
	if _, err := client.Write(chunk); err != nil {
		return false
	}
	p.account(chunk, respBytes)
	return true
}

// account advances the current-frame byte counter, resetting at each
// frame boundary.
func (p *Proxy) account(chunk []byte, respBytes *int) {
	*respBytes += len(chunk)
	for i := len(chunk) - 1; i >= 0; i-- {
		if chunk[i] == '\n' {
			*respBytes = len(chunk) - 1 - i
			break
		}
	}
}

// sleep waits d unless the proxy closes first; false means closing.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}
