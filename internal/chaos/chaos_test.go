package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"disco/internal/wire"
)

// slowHandler answers queries with a fixed payload, padded so mid-answer
// faults have bytes to land in.
type slowHandler struct{}

func (slowHandler) HandleQuery(ctx context.Context, lang, text string) (json.RawMessage, error) {
	pad := strings.Repeat("x", 256)
	return json.RawMessage(`"` + pad + `"`), nil
}
func (slowHandler) Capability() string    { return "grammar" }
func (slowHandler) Collections() []string { return []string{"person"} }

// rig is a client -> chaos proxy -> wire server chain.
type rig struct {
	srv   *wire.Server
	proxy *Proxy
	cli   *wire.Client
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	srv, err := wire.NewServer("127.0.0.1:0", slowHandler{})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(srv.Addr(), seed)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	cli := wire.NewClient(proxy.Addr())
	t.Cleanup(func() {
		cli.Close()
		proxy.Close()
		srv.Close()
	})
	return &rig{srv: srv, proxy: proxy, cli: cli}
}

func (r *rig) query(timeout time.Duration) (json.RawMessage, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return r.cli.Query(ctx, wire.LangSQL, "select * from person")
}

func TestProxyHealthyPassthrough(t *testing.T) {
	r := newRig(t, 1)
	val, err := r.query(2 * time.Second)
	if err != nil {
		t.Fatalf("healthy proxy broke the exchange: %v", err)
	}
	if len(val) == 0 {
		t.Fatal("empty value through healthy proxy")
	}
}

// TestProxyFlakyThenRecovers: a flaky link drops every answer mid-frame;
// the client's transparent redials all break too, so the call fails — and
// the moment the fault lifts, the same client succeeds again.
func TestProxyFlakyThenRecovers(t *testing.T) {
	r := newRig(t, 2)
	r.proxy.SetFault(Flaky{DropAfter: 10})
	if _, err := r.query(2 * time.Second); err == nil {
		t.Fatal("query succeeded through a link dropping every answer mid-frame")
	}
	r.proxy.SetFault(Healthy{})
	if _, err := r.query(2 * time.Second); err != nil {
		t.Fatalf("no recovery after flaky fault lifted: %v", err)
	}
}

func TestProxyPartitionThenRecovers(t *testing.T) {
	r := newRig(t, 3)
	if _, err := r.query(2 * time.Second); err != nil {
		t.Fatalf("pre-partition query: %v", err)
	}
	r.proxy.SetFault(Partition{})
	if _, err := r.query(500 * time.Millisecond); err == nil {
		t.Fatal("query succeeded across a partition")
	}
	r.proxy.SetFault(Healthy{})
	if _, err := r.query(2 * time.Second); err != nil {
		t.Fatalf("no recovery after partition healed: %v", err)
	}
}

// TestProxyCorruptFrames: corrupted response frames must fail decoding at
// the client, not silently deliver garbage as an answer.
func TestProxyCorruptFrames(t *testing.T) {
	r := newRig(t, 4)
	r.proxy.SetFault(Corrupt{})
	if _, err := r.query(2 * time.Second); err == nil {
		t.Fatal("corrupted frames decoded as a valid answer")
	}
	r.proxy.SetFault(Healthy{})
	if _, err := r.query(2 * time.Second); err != nil {
		t.Fatalf("no recovery after corruption stopped: %v", err)
	}
}

func TestProxyLatency(t *testing.T) {
	r := newRig(t, 5)
	r.proxy.SetFault(Latency{D: 100 * time.Millisecond})
	start := time.Now()
	if _, err := r.query(5 * time.Second); err != nil {
		t.Fatalf("latency fault broke the exchange: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("latency fault not applied: round trip took %v", elapsed)
	}
}

// TestProxySlowDrip: a response that trickles slower than the deadline is
// indistinguishable from an unavailable source — the caller's deadline,
// not an error frame, ends the exchange.
func TestProxySlowDrip(t *testing.T) {
	r := newRig(t, 6)
	r.proxy.SetFault(SlowDrip{Chunk: 4, PerChunk: 50 * time.Millisecond})
	_, err := r.query(300 * time.Millisecond)
	if err == nil {
		t.Fatal("slow-drip response beat a deadline it cannot meet")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow-drip should surface as the caller's deadline, got %v", err)
	}
}

// TestProxyScriptTimeline: Run walks the scripted fault transitions in
// order and leaves the last fault active.
func TestProxyScriptTimeline(t *testing.T) {
	r := newRig(t, 7)
	stop := make(chan struct{})
	defer close(stop)
	script := Script{
		Seed: 7,
		Steps: []Step{
			{After: 0, Fault: Latency{D: time.Millisecond}},
			{After: 20 * time.Millisecond, Fault: Partition{}},
			{After: 40 * time.Millisecond, Fault: Healthy{}},
		},
	}
	done := make(chan struct{})
	go func() {
		r.proxy.Run(stop, script)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("script did not finish")
	}
	if _, ok := r.proxy.Fault().(Healthy); !ok {
		t.Fatalf("after the script the proxy should be healthy, is %v", r.proxy.Fault())
	}
	if _, err := r.query(2 * time.Second); err != nil {
		t.Fatalf("query after scripted recovery: %v", err)
	}
}

// TestProxyRunStops: closing the stop channel abandons the rest of the
// timeline promptly.
func TestProxyRunStops(t *testing.T) {
	r := newRig(t, 8)
	stop := make(chan struct{})
	script := Script{Steps: []Step{
		{After: 0, Fault: Partition{}},
		{After: time.Hour, Fault: Healthy{}},
	}}
	done := make(chan struct{})
	go func() {
		r.proxy.Run(stop, script)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after stop")
	}
	if _, ok := r.proxy.Fault().(Partition); !ok {
		t.Fatalf("stop should leave the last applied fault active, got %v", r.proxy.Fault())
	}
}

// TestProxyCloseLeaksNothing: a proxy that carried live, faulted traffic
// must shut down without leaving forwarding goroutines behind.
func TestProxyCloseLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := wire.NewServer("127.0.0.1:0", slowHandler{})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(srv.Addr(), 9)
	if err != nil {
		t.Fatal(err)
	}
	cli := wire.NewClient(proxy.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if _, err := cli.Query(ctx, wire.LangSQL, "q"); err != nil {
		t.Fatalf("warm-up query: %v", err)
	}
	cancel()
	// Leave a slow-drip transfer in flight when Close lands.
	proxy.SetFault(SlowDrip{Chunk: 1, PerChunk: 20 * time.Millisecond})
	dripCtx, dripCancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	cli.Query(dripCtx, wire.LangSQL, "q")
	dripCancel()

	cli.Close()
	proxy.Close()
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
}
