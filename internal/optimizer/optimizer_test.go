package optimizer

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/costmodel"
	"disco/internal/oql"
)

func personRef(extent, repo string) algebra.ExtentRef {
	return algebra.ExtentRef{
		Extent: extent, Repo: repo, Source: extent, Iface: "Person",
		Attrs: []string{"id", "name", "salary"},
	}
}

type resolver struct{}

func (resolver) ResolvePlan(name string, star bool) (algebra.Node, error) {
	switch name {
	case "person0":
		return &algebra.Submit{Repo: "r0", Input: &algebra.Get{Ref: personRef("person0", "r0")}}, nil
	case "person1":
		return &algebra.Submit{Repo: "r1", Input: &algebra.Get{Ref: personRef("person1", "r1")}}, nil
	case "person":
		p0, _ := resolver{}.ResolvePlan("person0", false)
		p1, _ := resolver{}.ResolvePlan("person1", false)
		return &algebra.Union{Inputs: []algebra.Node{p0, p1}}, nil
	case "employee0":
		return &algebra.Submit{Repo: "r0", Input: &algebra.Get{Ref: algebra.ExtentRef{
			Extent: "employee0", Repo: "r0", Source: "employee0", Attrs: []string{"ename", "dept"},
		}}}, nil
	case "manager0":
		return &algebra.Submit{Repo: "r0", Input: &algebra.Get{Ref: algebra.ExtentRef{
			Extent: "manager0", Repo: "r0", Source: "manager0", Attrs: []string{"mname", "mdept"},
		}}}, nil
	default:
		return nil, fmt.Errorf("unknown extent %q", name)
	}
}

// grammarMap is a CapabilitySource backed by a map.
type grammarMap map[string]*capability.Grammar

func (m grammarMap) GrammarFor(repo string) (*capability.Grammar, error) {
	g, ok := m[repo]
	if !ok {
		return nil, fmt.Errorf("no wrapper for %q", repo)
	}
	return g, nil
}

func fullCaps() grammarMap {
	g := capability.Standard(capability.FullOpSet())
	return grammarMap{"r0": g, "r1": g}
}

func scanCaps() grammarMap {
	g := capability.Standard(capability.ScanOpSet())
	return grammarMap{"r0": g, "r1": g}
}

func compile(t *testing.T, src string) algebra.Node {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := algebra.Compile(e, resolver{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const paperQuery = `select x.name from x in person where x.salary > 10`

// TestDefaultCostPushesMaximally verifies the §3.3 claim: with no cost
// information, "the optimizer will choose plans where the maximum amount of
// computation is done at the data source".
func TestDefaultCostPushesMaximally(t *testing.T) {
	o := New(fullCaps(), costmodel.New())
	plan, report := o.Optimize(compile(t, paperQuery), 1)
	s := plan.String()
	// Both select and project must have moved into the submits.
	if !strings.Contains(s, "submit(r0, project([name], select(salary > 10, get(person0))))") {
		t.Errorf("chosen plan does not push maximally:\n%s\n%s", s, report)
	}
	if report.CacheHit {
		t.Error("first optimization cannot be a cache hit")
	}
}

// TestScanWrappersForceMediatorPlan: with get-only wrappers every candidate
// collapses to the unpushed plan.
func TestScanWrappersForceMediatorPlan(t *testing.T) {
	o := New(scanCaps(), costmodel.New())
	plan, report := o.Optimize(compile(t, paperQuery), 1)
	if strings.Contains(plan.String(), "submit(r0, select") || strings.Contains(plan.String(), "submit(r0, project") {
		t.Errorf("nothing should push to scan wrappers:\n%s", plan)
	}
	if len(report.Candidates) != 1 {
		t.Errorf("all combos should dedup to one candidate, got %d", len(report.Candidates))
	}
}

// TestHistoryCanOverridePushdown: when observed costs say the pushed-down
// call is slower (e.g. a source with a terrible selection path), the
// optimizer keeps the selection at the mediator.
func TestHistoryCanOverridePushdown(t *testing.T) {
	h := costmodel.New()
	// Teach the model: plain scans are fast and small...
	scan0 := &algebra.Get{Ref: personRef("person0", "r0")}
	scan1 := &algebra.Get{Ref: personRef("person1", "r1")}
	h.Record("r0", scan0, 1*time.Millisecond, 10)
	h.Record("r1", scan1, 1*time.Millisecond, 10)
	// ... while pushed selections at these sources are pathologically slow.
	pred, err := oql.ParseQuery(`salary > 10`)
	if err != nil {
		t.Fatal(err)
	}
	slow0 := &algebra.Select{Pred: pred, Input: scan0}
	slow1 := &algebra.Select{Pred: pred, Input: scan1}
	projSlow0 := &algebra.Project{Cols: []algebra.Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}}, Input: slow0}
	projSlow1 := &algebra.Project{Cols: []algebra.Col{{Name: "name", Expr: &oql.Ident{Name: "name"}}}, Input: slow1}
	for _, rec := range []struct {
		repo string
		expr algebra.Node
	}{{"r0", slow0}, {"r1", slow1}, {"r0", projSlow0}, {"r1", projSlow1}} {
		h.Record(rec.repo, rec.expr, 10*time.Second, 8)
	}

	o := New(fullCaps(), h)
	plan, report := o.Optimize(compile(t, paperQuery), 1)
	if strings.Contains(plan.String(), "submit(r0, select") {
		t.Errorf("optimizer ignored the recorded slowness:\n%s\n%s", plan, report)
	}
}

func TestPlanCache(t *testing.T) {
	o := New(fullCaps(), costmodel.New())
	q := compile(t, paperQuery)
	p1, r1 := o.Optimize(q, 1)
	p2, r2 := o.Optimize(compile(t, paperQuery), 1)
	if r1.CacheHit || !r2.CacheHit {
		t.Errorf("cache hits = %v, %v; want false, true", r1.CacheHit, r2.CacheHit)
	}
	if !algebra.Equal(p1, p2) {
		t.Error("cache returned a different plan")
	}
	hits, misses := o.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
	// §3.3: extent updates invalidate cached plans.
	_, r3 := o.Optimize(compile(t, paperQuery), 2)
	if r3.CacheHit {
		t.Error("version bump must invalidate the cache")
	}
	// Manual invalidation too.
	o.InvalidateCache()
	_, r4 := o.Optimize(compile(t, paperQuery), 2)
	if r4.CacheHit {
		t.Error("InvalidateCache should drop plans")
	}
}

func TestJoinPushdownChosenForSameRepo(t *testing.T) {
	o := New(fullCaps(), costmodel.New())
	q := compile(t, `select struct(e: x.ename, m: y.mname) from x in employee0, y in manager0 where x.dept = y.mdept`)
	plan, report := o.Optimize(q, 1)
	found := false
	algebra.Walk(plan, func(n algebra.Node) {
		if s, ok := n.(*algebra.Submit); ok {
			if _, isJoin := s.Input.(*algebra.Join); isJoin {
				found = true
			}
		}
	})
	if !found {
		t.Errorf("same-repo equi-join should push under default costs:\n%s\n%s", plan, report)
	}
}

func TestHeterogeneousCapabilities(t *testing.T) {
	// r0 is a full SQL source, r1 is scan-only: the select pushes to r0's
	// branch of the union but stays at the mediator for r1's.
	caps := grammarMap{
		"r0": capability.Standard(capability.FullOpSet()),
		"r1": capability.Standard(capability.ScanOpSet()),
	}
	o := New(caps, costmodel.New())
	plan, _ := o.Optimize(compile(t, paperQuery), 1)
	s := plan.String()
	if !strings.Contains(s, "submit(r0, project([name], select(salary > 10, get(person0))))") {
		t.Errorf("r0 branch should be fully pushed: %s", s)
	}
	if strings.Contains(s, "submit(r1, select") || strings.Contains(s, "submit(r1, project") {
		t.Errorf("r1 branch must stay unpushed: %s", s)
	}
}

func TestReportListsAlternatives(t *testing.T) {
	o := New(fullCaps(), costmodel.New())
	_, report := o.Optimize(compile(t, paperQuery), 1)
	if len(report.Candidates) < 2 {
		t.Fatalf("candidates = %d, want several distinct plans", len(report.Candidates))
	}
	// Costs are sorted ascending.
	for i := 1; i < len(report.Candidates); i++ {
		if report.Candidates[i].Cost.Total < report.Candidates[i-1].Cost.Total {
			t.Errorf("candidates not sorted by cost")
		}
	}
	if !strings.Contains(report.String(), "=>") {
		t.Error("report should mark the chosen plan")
	}
}

func TestMissingWrapperMeansNoPushdown(t *testing.T) {
	o := New(grammarMap{}, costmodel.New())
	plan, _ := o.Optimize(compile(t, paperQuery), 1)
	if strings.Contains(plan.String(), "select(salary") {
		t.Errorf("unknown wrappers must not receive pushdown: %s", plan)
	}
}

func TestChosenCandidate(t *testing.T) {
	o := New(fullCaps(), costmodel.New())
	plan, report := o.Optimize(compile(t, paperQuery), 1)
	chosen := report.ChosenCandidate()
	if !algebra.Equal(chosen.Plan, plan) {
		t.Error("ChosenCandidate should return the selected plan")
	}
	if chosen.Cost.Total > report.Candidates[len(report.Candidates)-1].Cost.Total {
		t.Error("chosen plan should not cost more than the worst candidate")
	}
}
