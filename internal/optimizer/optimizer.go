// Package optimizer implements DISCO's mediator query optimizer (paper §3):
// it normalizes logical plans, enumerates capability-checked pushdown
// alternatives, estimates each alternative's cost with the learned cost
// model, and picks the cheapest. Optimized plans are cached per catalog
// version, implementing §3.3's requirement that cached plans be invalidated
// when extents change.
package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/costmodel"
)

// CapabilitySource supplies the wrapper grammar serving each repository —
// the optimizer's view of the submit-functionality call.
type CapabilitySource interface {
	GrammarFor(repo string) (*capability.Grammar, error)
}

// Candidate is one enumerated alternative with its estimated cost.
type Candidate struct {
	Options algebra.PushOptions
	Plan    algebra.Node
	Cost    Cost
	// pruned names the shards the candidate's variant pruned; Report.Pruned
	// reflects the chosen candidate so EXPLAIN never names a shard the
	// executed plan still reads.
	pruned []string
}

// Report describes an optimization decision, for EXPLAIN-style output and
// the experiment harness.
type Report struct {
	Candidates []Candidate
	Chosen     int
	CacheHit   bool
	// Pruned lists the shards (extent@repo) partition pruning removed from
	// the plan: repositories whose declared hash slot or key range cannot
	// contain rows the query's predicates ask for. A partial answer's
	// residual never needs them, and EXPLAIN shows the DBA which sources a
	// query skips.
	Pruned []string
}

// Chosen returns the selected candidate.
func (r *Report) ChosenCandidate() Candidate { return r.Candidates[r.Chosen] }

// Optimizer searches for the cheapest capability-legal plan.
type Optimizer struct {
	caps    algebra.Capabilities
	history *costmodel.History

	// avail reports whether a repository is currently believed reachable
	// (the mediator wires it to its per-source circuit breakers); nil
	// means everything is. Submits to sources reported down are charged
	// unavailPenalty milliseconds of source time — the timeout the call
	// would likely burn before partial evaluation steps in.
	avail          func(repo string) bool
	unavailPenalty float64

	mu      sync.Mutex
	cache   map[string]cached
	version int64
	hits    int64
	misses  int64
}

// SetAvailability installs the availability oracle the cost model consults
// and the source-time penalty (in milliseconds) charged per submit to a
// source reported down. Call it before the optimizer is shared across
// goroutines; pair it with InvalidateCache when the oracle's answers move.
func (o *Optimizer) SetAvailability(avail func(repo string) bool, penaltyMillis float64) {
	o.avail = avail
	o.unavailPenalty = penaltyMillis
}

type cached struct {
	plan   algebra.Node
	report *Report
}

// New returns an optimizer resolving wrapper grammars per repository.
func New(caps CapabilitySource, history *costmodel.History) *Optimizer {
	return NewWithCapabilities(capsAdapter{src: caps}, history)
}

// NewWithCapabilities returns an optimizer using a general capability
// oracle (the mediator supplies one that resolves wrappers per extent).
func NewWithCapabilities(caps algebra.Capabilities, history *costmodel.History) *Optimizer {
	return &Optimizer{
		caps:    caps,
		history: history,
		cache:   make(map[string]cached),
	}
}

// capsAdapter implements algebra.Capabilities on top of a CapabilitySource.
type capsAdapter struct {
	src CapabilitySource
}

// Accepts implements algebra.Capabilities.
func (c capsAdapter) Accepts(repo string, expr algebra.Node) bool {
	g, err := c.src.GrammarFor(repo)
	if err != nil || g == nil {
		return false
	}
	return g.AcceptsExpr(expr)
}

// pushCombos is the enumerated search space: which operator classes to
// offer each wrapper. Grammar checks then decide per-submit whether the
// offer lands.
var pushCombos = []algebra.PushOptions{
	{},
	{Select: true},
	{Project: true},
	{Select: true, Project: true},
	{Select: true, Join: true},
	{Select: true, Project: true, Join: true},
}

// Optimize returns the cheapest plan for the (already compiled) logical
// plan. version is the catalog version the plan was compiled against;
// cached results from other versions are discarded.
func (o *Optimizer) Optimize(plan algebra.Node, version int64) (algebra.Node, *Report) {
	key := plan.String()
	o.mu.Lock()
	if o.version != version {
		// The catalog changed: every cached plan may reference stale
		// extents (§3.3).
		o.cache = make(map[string]cached)
		o.version = version
	}
	if c, ok := o.cache[key]; ok {
		o.hits++
		o.mu.Unlock()
		r := *c.report
		r.CacheHit = true
		return c.plan, &r
	}
	o.misses++
	o.mu.Unlock()

	norm := algebra.Normalize(plan)

	// Placement-aware passes: partition pruning removes shards the
	// predicates provably exclude (re-normalizing collapses the emptied
	// union branches), then the partition-wise variant — when a join's two
	// sides are co-partitioned on the join attribute — competes with the
	// all-shards join under the cost model's max-of-survivors punion rule.
	// The partition-wise rewrite is itself pruned again: splitting a join
	// per shard lets normalization push single-side predicates into the
	// shard branches, where they can exclude further shards.
	type variant struct {
		plan   algebra.Node
		pruned []string
	}
	pruned, prunedShards := pruneFixpoint(norm)
	variants := []variant{{plan: pruned, pruned: prunedShards}}
	if pw, dropped := algebra.PartitionWiseJoins(pruned); !algebra.Equal(pw, pruned) {
		pw, pwShards := pruneFixpoint(algebra.Normalize(pw))
		all := mergeSorted(mergeSorted(prunedShards, dropped), pwShards)
		variants = append(variants, variant{plan: pw, pruned: all})
	}

	seen := map[string]bool{}
	report := &Report{}
	for _, v := range variants {
		for _, opt := range pushCombos {
			candidate := algebra.Push(v.plan, o.caps, opt)
			s := candidate.String()
			if seen[s] {
				continue
			}
			seen[s] = true
			report.Candidates = append(report.Candidates, Candidate{
				Options: opt,
				Plan:    candidate,
				Cost:    o.estimate(candidate),
				pruned:  v.pruned,
			})
		}
	}
	// Deterministic choice: lowest total cost, ties broken by most-pushed
	// (fewest mediator-side operators, i.e. shortest plan string), then by
	// string order.
	sort.SliceStable(report.Candidates, func(i, j int) bool {
		ci, cj := report.Candidates[i], report.Candidates[j]
		if ci.Cost.Total != cj.Cost.Total {
			return ci.Cost.Total < cj.Cost.Total
		}
		si, sj := ci.Plan.String(), cj.Plan.String()
		if len(si) != len(sj) {
			return len(si) < len(sj)
		}
		return si < sj
	})
	report.Chosen = 0
	chosen := report.Candidates[0].Plan
	report.Pruned = report.Candidates[0].pruned

	o.mu.Lock()
	o.cache[key] = cached{plan: chosen, report: report}
	o.mu.Unlock()
	return chosen, report
}

// pruneFixpoint alternates partition pruning and normalization until the
// plan is stable: dropping an emptied branch can expose new select-over-
// branch shapes (and vice versa).
func pruneFixpoint(n algebra.Node) (algebra.Node, []string) {
	var pruned []string
	for {
		next, names := algebra.PrunePartitions(n)
		if len(names) == 0 {
			return n, pruned
		}
		pruned = mergeSorted(pruned, names)
		n = algebra.Normalize(next)
	}
}

// mergeSorted merges two sorted string slices, dropping duplicates.
func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// CacheStats reports plan-cache hits and misses.
func (o *Optimizer) CacheStats() (hits, misses int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hits, o.misses
}

// InvalidateCache drops every cached plan (used when cost history shifts
// enough that cached choices are suspect).
func (o *Optimizer) InvalidateCache() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cache = make(map[string]cached)
}

// String renders a report for EXPLAIN output.
func (r *Report) String() string {
	out := ""
	if len(r.Pruned) > 0 {
		out = fmt.Sprintf("pruned shards: %s\n", strings.Join(r.Pruned, ", "))
	}
	for i, c := range r.Candidates {
		marker := "  "
		if i == r.Chosen {
			marker = "=>"
		}
		out += fmt.Sprintf("%s cost=%.3f net=%.0fvals %s\n", marker, c.Cost.Total, c.Cost.TransferValues, c.Plan)
	}
	return out
}
