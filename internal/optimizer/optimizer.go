// Package optimizer implements DISCO's mediator query optimizer (paper §3):
// it normalizes logical plans, enumerates capability-checked pushdown
// alternatives, estimates each alternative's cost with the learned cost
// model, and picks the cheapest. Optimized plans are cached per catalog
// version, implementing §3.3's requirement that cached plans be invalidated
// when extents change.
package optimizer

import (
	"fmt"
	"sort"
	"sync"

	"disco/internal/algebra"
	"disco/internal/capability"
	"disco/internal/costmodel"
)

// CapabilitySource supplies the wrapper grammar serving each repository —
// the optimizer's view of the submit-functionality call.
type CapabilitySource interface {
	GrammarFor(repo string) (*capability.Grammar, error)
}

// Candidate is one enumerated alternative with its estimated cost.
type Candidate struct {
	Options algebra.PushOptions
	Plan    algebra.Node
	Cost    Cost
}

// Report describes an optimization decision, for EXPLAIN-style output and
// the experiment harness.
type Report struct {
	Candidates []Candidate
	Chosen     int
	CacheHit   bool
}

// Chosen returns the selected candidate.
func (r *Report) ChosenCandidate() Candidate { return r.Candidates[r.Chosen] }

// Optimizer searches for the cheapest capability-legal plan.
type Optimizer struct {
	caps    algebra.Capabilities
	history *costmodel.History

	mu      sync.Mutex
	cache   map[string]cached
	version int64
	hits    int64
	misses  int64
}

type cached struct {
	plan   algebra.Node
	report *Report
}

// New returns an optimizer resolving wrapper grammars per repository.
func New(caps CapabilitySource, history *costmodel.History) *Optimizer {
	return NewWithCapabilities(capsAdapter{src: caps}, history)
}

// NewWithCapabilities returns an optimizer using a general capability
// oracle (the mediator supplies one that resolves wrappers per extent).
func NewWithCapabilities(caps algebra.Capabilities, history *costmodel.History) *Optimizer {
	return &Optimizer{
		caps:    caps,
		history: history,
		cache:   make(map[string]cached),
	}
}

// capsAdapter implements algebra.Capabilities on top of a CapabilitySource.
type capsAdapter struct {
	src CapabilitySource
}

// Accepts implements algebra.Capabilities.
func (c capsAdapter) Accepts(repo string, expr algebra.Node) bool {
	g, err := c.src.GrammarFor(repo)
	if err != nil || g == nil {
		return false
	}
	return g.AcceptsExpr(expr)
}

// pushCombos is the enumerated search space: which operator classes to
// offer each wrapper. Grammar checks then decide per-submit whether the
// offer lands.
var pushCombos = []algebra.PushOptions{
	{},
	{Select: true},
	{Project: true},
	{Select: true, Project: true},
	{Select: true, Join: true},
	{Select: true, Project: true, Join: true},
}

// Optimize returns the cheapest plan for the (already compiled) logical
// plan. version is the catalog version the plan was compiled against;
// cached results from other versions are discarded.
func (o *Optimizer) Optimize(plan algebra.Node, version int64) (algebra.Node, *Report) {
	key := plan.String()
	o.mu.Lock()
	if o.version != version {
		// The catalog changed: every cached plan may reference stale
		// extents (§3.3).
		o.cache = make(map[string]cached)
		o.version = version
	}
	if c, ok := o.cache[key]; ok {
		o.hits++
		o.mu.Unlock()
		r := *c.report
		r.CacheHit = true
		return c.plan, &r
	}
	o.misses++
	o.mu.Unlock()

	norm := algebra.Normalize(plan)

	seen := map[string]bool{}
	report := &Report{}
	for _, opt := range pushCombos {
		candidate := algebra.Push(norm, o.caps, opt)
		s := candidate.String()
		if seen[s] {
			continue
		}
		seen[s] = true
		report.Candidates = append(report.Candidates, Candidate{
			Options: opt,
			Plan:    candidate,
			Cost:    o.estimate(candidate),
		})
	}
	// Deterministic choice: lowest total cost, ties broken by most-pushed
	// (fewest mediator-side operators, i.e. shortest plan string), then by
	// string order.
	sort.SliceStable(report.Candidates, func(i, j int) bool {
		ci, cj := report.Candidates[i], report.Candidates[j]
		if ci.Cost.Total != cj.Cost.Total {
			return ci.Cost.Total < cj.Cost.Total
		}
		si, sj := ci.Plan.String(), cj.Plan.String()
		if len(si) != len(sj) {
			return len(si) < len(sj)
		}
		return si < sj
	})
	report.Chosen = 0
	chosen := report.Candidates[0].Plan

	o.mu.Lock()
	o.cache[key] = cached{plan: chosen, report: report}
	o.mu.Unlock()
	return chosen, report
}

// CacheStats reports plan-cache hits and misses.
func (o *Optimizer) CacheStats() (hits, misses int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hits, o.misses
}

// InvalidateCache drops every cached plan (used when cost history shifts
// enough that cached choices are suspect).
func (o *Optimizer) InvalidateCache() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cache = make(map[string]cached)
}

// String renders a report for EXPLAIN output.
func (r *Report) String() string {
	out := ""
	for i, c := range r.Candidates {
		marker := "  "
		if i == r.Chosen {
			marker = "=>"
		}
		out += fmt.Sprintf("%s cost=%.3f net=%.0fvals %s\n", marker, c.Cost.Total, c.Cost.TransferValues, c.Plan)
	}
	return out
}
