package optimizer

import (
	"testing"
	"time"

	"disco/internal/algebra"
	"disco/internal/costmodel"
)

// replicatedSubmit is a submit whose extent declares two copies.
func replicatedSubmit() *algebra.Submit {
	ref := personRef("person0", "r0")
	ref.Replicas = []string{"r0", "r0b"}
	return &algebra.Submit{Repo: "r0", Input: &algebra.Get{Ref: ref}}
}

// TestReplicatedSubmitNotPenalizedWhileReplicaHealthy: an open breaker on
// the primary must not charge the unavailability penalty when a healthy
// replica would answer without burning the timeout.
func TestReplicatedSubmitNotPenalizedWhileReplicaHealthy(t *testing.T) {
	const penalty = 2000.0
	o := New(fullCaps(), costmodel.New())
	o.SetAvailability(func(repo string) bool { return repo != "r0" }, penalty)
	cost := o.estimate(replicatedSubmit())
	if cost.SourceTime >= penalty {
		t.Errorf("SourceTime = %v: penalized despite a healthy replica", cost.SourceTime)
	}
}

// TestReplicatedSubmitPenalizedWhenAllCopiesDown: with no breaker-admitted
// copy at all the timeout penalty still applies.
func TestReplicatedSubmitPenalizedWhenAllCopiesDown(t *testing.T) {
	const penalty = 2000.0
	o := New(fullCaps(), costmodel.New())
	o.SetAvailability(func(string) bool { return false }, penalty)
	cost := o.estimate(replicatedSubmit())
	if cost.SourceTime < penalty {
		t.Errorf("SourceTime = %v, want >= the %v penalty with every copy down", cost.SourceTime, penalty)
	}
}

// TestReplicatedSubmitCostsCheapestAdmittedCopy: among admitted copies the
// submit costs the fastest one — the copy routing would dial first.
func TestReplicatedSubmitCostsCheapestAdmittedCopy(t *testing.T) {
	h := costmodel.New()
	sub := replicatedSubmit()
	for i := 0; i < 4; i++ {
		h.Record("r0", sub.Input, 50*time.Millisecond, 10)
		h.Record("r0b", sub.Input, 5*time.Millisecond, 10)
	}
	o := New(fullCaps(), h)
	o.SetAvailability(func(string) bool { return true }, 2000)
	cost := o.estimate(sub)
	if cost.SourceTime < 4 || cost.SourceTime > 10 {
		t.Errorf("SourceTime = %vms, want ~5ms (the faster copy), not the primary's ~50ms", cost.SourceTime)
	}
}
