package optimizer

import (
	"time"

	"disco/internal/algebra"
	"disco/internal/costmodel"
)

// Cost is the estimated cost of a plan in abstract units (1 unit = 1ms of
// estimated elapsed time). TransferRows counts rows crossing the wire from
// data sources and TransferValues counts individual attribute values
// (rows × width) — the quantities pushdown exists to reduce.
type Cost struct {
	Total          float64
	SourceTime     float64
	TransferRows   float64
	TransferValues float64
	MediatorCPU    float64
}

// Cost-model constants. The absolute values matter less than their order:
// moving a value over the network dwarfs touching it at the mediator, which
// is what makes pushdown win under the default estimate.
const (
	// perValueNet is the cost of shipping one attribute value from a
	// source. Charging by value rather than by row makes projection
	// pushdown pay off (fewer attributes per row).
	perValueNet = 0.02
	// defaultWidth is the assumed attribute count when a submit's output
	// shape is unknown.
	defaultWidth = 3.0
	// perRowCPU is the cost of one mediator-side operator touching a row.
	perRowCPU = 0.001
	// defaultSelectivity estimates rows surviving a predicate.
	defaultSelectivity = 0.33
	// joinSelectivity estimates the surviving fraction of a join's cross
	// product.
	joinSelectivity = 0.1
	// evalCost is the flat charge for an unplannable eval node.
	evalCost = 1.0
)

// estimate computes the cost of a plan bottom-up. Exec (submit) costs come
// from the learned history: with no observations the paper's default (time
// 0, data 1) applies, under which every source-side operation is free and
// the optimizer pushes as much as wrapper grammars accept.
func (o *Optimizer) estimate(plan algebra.Node) Cost {
	c := &costing{history: o.history, avail: o.avail, unavailPenalty: o.unavailPenalty}
	c.visit(plan)
	c.cost.Total = c.cost.SourceTime + c.cost.TransferValues*perValueNet + c.cost.MediatorCPU
	return c.cost
}

type costing struct {
	history        *costmodel.History
	avail          func(repo string) bool
	unavailPenalty float64
	cost           Cost
}

// submitEstimate costs a submit at its cheapest breaker-admitted copy: a
// shard whose primary breaker is open but whose replica is healthy costs
// the replica's estimate — routing dials the healthy copy first, burning
// nothing on the dead one — not the primary's estimate plus the timeout
// penalty. Only a shard with no admitted copy at all reports penalized,
// charging the timeout such a call would likely burn.
func (c *costing) submitEstimate(x *algebra.Submit) (est costmodel.Estimate, penalized bool) {
	estAt := func(repo string) costmodel.Estimate {
		if c.history != nil {
			return c.history.Estimate(repo, x.Input)
		}
		return costmodel.DefaultEstimate()
	}
	if c.avail == nil {
		return estAt(x.Repo), false
	}
	found := false
	for _, cand := range submitCopies(x) {
		if !c.avail(cand) {
			continue
		}
		e := estAt(cand)
		if !found || e.Time < est.Time {
			est, found = e, true
		}
	}
	if found {
		return est, false
	}
	return estAt(x.Repo), true
}

// submitCopies lists the repositories holding every extent the submit
// expression reads — the intersection of its refs' declared replica
// groups, or the submit's own repository when none are declared. The refs
// carry the groups (the catalog stamps them at compile time), so costing
// needs no catalog access.
func submitCopies(x *algebra.Submit) []string {
	var copies []string
	algebra.Walk(x.Input, func(n algebra.Node) {
		g, ok := n.(*algebra.Get)
		if !ok {
			return
		}
		group := g.Ref.Replicas
		if len(group) == 0 {
			group = []string{x.Repo}
		}
		if copies == nil {
			// Copy: the in-place intersection below must not scribble on
			// the ref's shared Replicas slice.
			copies = append([]string(nil), group...)
			return
		}
		keep := copies[:0]
		for _, cand := range copies {
			for _, other := range group {
				if cand == other {
					keep = append(keep, cand)
					break
				}
			}
		}
		copies = keep
	})
	if len(copies) == 0 {
		return []string{x.Repo}
	}
	return copies
}

// visit returns the estimated output cardinality of the node and
// accumulates cost terms.
func (c *costing) visit(n algebra.Node) float64 {
	switch x := n.(type) {
	case *algebra.Submit:
		est, penalized := c.submitEstimate(x)
		width := defaultWidth
		if attrs, ok := algebra.OutputAttrs(x.Input); ok {
			width = float64(len(attrs))
		}
		c.cost.SourceTime += float64(est.Time) / float64(time.Millisecond)
		if penalized {
			// No copy of the shard is breaker-admitted: charge the timeout
			// this call would likely burn waiting on a dead source.
			c.cost.SourceTime += c.unavailPenalty
		}
		c.cost.TransferRows += est.Rows
		c.cost.TransferValues += est.Rows * width
		return est.Rows
	case *algebra.Get:
		// A bare get only appears inside submit expressions, which are
		// costed as a whole above; reaching here means a malformed plan,
		// count it as one row.
		return 1
	case *algebra.Const:
		return float64(x.Data.Len())
	case *algebra.Union:
		if x.Par {
			// A partition fan-out runs its shards concurrently: the elapsed
			// source time is the slowest shard, not the sum — which is how
			// the optimizer learns that one slow shard gates the whole
			// extent while transfer and CPU costs still accumulate.
			total, slowest := 0.0, 0.0
			for _, in := range x.Inputs {
				before := c.cost.SourceTime
				total += c.visit(in)
				shard := c.cost.SourceTime - before
				c.cost.SourceTime = before
				if shard > slowest {
					slowest = shard
				}
			}
			c.cost.SourceTime += slowest
			return total
		}
		total := 0.0
		for _, in := range x.Inputs {
			total += c.visit(in)
		}
		return total
	case *algebra.Bind:
		rows := c.visit(x.Input)
		c.cost.MediatorCPU += rows * perRowCPU
		return rows
	case *algebra.Select:
		rows := c.visit(x.Input)
		c.cost.MediatorCPU += rows * perRowCPU
		return rows * defaultSelectivity
	case *algebra.Project:
		rows := c.visit(x.Input)
		c.cost.MediatorCPU += rows * perRowCPU * float64(len(x.Cols))
		return rows
	case *algebra.Map:
		rows := c.visit(x.Input)
		c.cost.MediatorCPU += rows * perRowCPU
		return rows
	case *algebra.Join:
		l := c.visit(x.L)
		r := c.visit(x.R)
		// Hash join for equi-predicates (l+r), nested loop otherwise (l*r);
		// approximate with the cheaper form when a predicate exists since
		// the implementation rules prefer hash joins. Emitting the merged
		// output tuples is charged too: it is what makes a partition-wise
		// union of per-shard joins (sum of l_i*r_i) beat one all-shards
		// join ((sum l)*(sum r)) under equal transfer costs.
		if x.Pred != nil {
			out := l * r * joinSelectivity
			c.cost.MediatorCPU += (l + r + out) * perRowCPU
			return out
		}
		c.cost.MediatorCPU += l * r * perRowCPU
		return l * r
	case *algebra.Nest:
		rows := c.visit(x.Input)
		c.cost.MediatorCPU += rows * perRowCPU
		return rows
	case *algebra.Depend:
		rows := c.visit(x.Input)
		expanded := rows * 4 // domain fan-out guess
		c.cost.MediatorCPU += expanded * perRowCPU
		return expanded
	case *algebra.Distinct:
		rows := c.visit(x.Input)
		c.cost.MediatorCPU += rows * perRowCPU
		return rows * 0.7
	case *algebra.Flatten:
		rows := c.visit(x.Input)
		expanded := rows * 4
		c.cost.MediatorCPU += expanded * perRowCPU
		return expanded
	case *algebra.Agg:
		rows := c.visit(x.Input)
		c.cost.MediatorCPU += rows * perRowCPU
		return 1
	case *algebra.Eval:
		c.cost.MediatorCPU += evalCost
		return 1
	default:
		return 1
	}
}
