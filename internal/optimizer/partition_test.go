package optimizer

import (
	"fmt"
	"strings"
	"testing"

	"disco/internal/algebra"
	"disco/internal/costmodel"
	"disco/internal/oql"
	"disco/internal/types"
)

// partResolver resolves two extents hash-partitioned by id over the same
// two repositories (co-partitioned), plus a third partitioned by a
// different attribute.
type partResolver struct{}

func (partResolver) ResolvePlan(name string, star bool) (algebra.Node, error) {
	hashID := &algebra.PartitionSpec{Kind: algebra.PartHash, Attr: "id"}
	hashDept := &algebra.PartitionSpec{Kind: algebra.PartHash, Attr: "dept"}
	mk := func(extent string, attrs []string, spec *algebra.PartitionSpec) algebra.Node {
		inputs := make([]algebra.Node, 2)
		for i, repo := range []string{"r0", "r1"} {
			inputs[i] = &algebra.Submit{Repo: repo, Input: &algebra.Get{Ref: algebra.ExtentRef{
				Extent: extent, Repo: repo, Source: extent, Attrs: attrs,
				Partition: repo, PartSpec: spec, PartIndex: i, PartCount: 2,
			}}}
		}
		return &algebra.Union{Inputs: inputs, Par: true}
	}
	switch name {
	case "orders":
		return mk("orders", []string{"id", "total"}, hashID), nil
	case "invoices":
		return mk("invoices", []string{"id", "ref"}, hashID), nil
	case "depts":
		return mk("depts", []string{"id", "dept"}, hashDept), nil
	default:
		return nil, fmt.Errorf("unknown extent %q", name)
	}
}

func compilePart(t *testing.T, src string) algebra.Node {
	t.Helper()
	e, err := oql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := algebra.Compile(e, partResolver{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// joinShape classifies the joins of a plan: how many there are and how
// many read their two sides from different repositories (cross-shard).
func joinShape(plan algebra.Node) (joins, crossShard int) {
	algebra.Walk(plan, func(n algebra.Node) {
		j, ok := n.(*algebra.Join)
		if !ok {
			return
		}
		joins++
		repos := map[string]bool{}
		for _, side := range []algebra.Node{j.L, j.R} {
			for _, s := range algebra.Submits(side) {
				repos[s.Repo] = true
			}
		}
		if len(repos) > 1 {
			crossShard++
		}
	})
	return joins, crossShard
}

// TestCoPartitionedJoinCompilesPartitionWise is the plan-shape acceptance
// test: a co-partitioned equi-join on the partition attribute becomes a
// parallel union of per-shard joins with no cross-shard pairs.
func TestCoPartitionedJoinCompilesPartitionWise(t *testing.T) {
	o := New(scanCaps(), costmodel.New())
	q := compilePart(t, `select struct(a: x.total, b: y.ref) from x in orders, y in invoices where x.id = y.id`)
	plan, report := o.Optimize(q, 1)
	joins, crossShard := joinShape(plan)
	if joins != 2 || crossShard != 0 {
		t.Errorf("joins = %d (want one per shard, 2), cross-shard = %d (want 0):\n%s\n%s",
			joins, crossShard, plan, report)
	}
	u, ok := plan.(*algebra.Union)
	if !ok || !u.Par {
		t.Errorf("per-shard joins should sit under a parallel union:\n%s", plan)
	}
}

// TestDifferentPartitionAttrsStayGeneric: extents partitioned by different
// attributes are not co-partitioned, so the join keeps the generic shape.
func TestDifferentPartitionAttrsStayGeneric(t *testing.T) {
	o := New(scanCaps(), costmodel.New())
	q := compilePart(t, `select struct(a: x.total, b: y.dept) from x in orders, y in depts where x.id = y.id`)
	plan, _ := o.Optimize(q, 1)
	if joins, crossShard := joinShape(plan); joins != 1 || crossShard != 1 {
		t.Errorf("non-co-partitioned extents must keep the single all-shards join (joins=%d cross=%d):\n%s",
			joins, crossShard, plan)
	}
}

// TestJoinOffPartitionAttrStaysGeneric: co-partitioned extents joined on a
// non-partition attribute cannot be joined partition-wise (equal join keys
// may live at different shards).
func TestJoinOffPartitionAttrStaysGeneric(t *testing.T) {
	o := New(scanCaps(), costmodel.New())
	q := compilePart(t, `select struct(a: x.id, b: y.id) from x in orders, y in invoices where x.total = y.ref`)
	plan, _ := o.Optimize(q, 1)
	if joins, crossShard := joinShape(plan); joins != 1 || crossShard != 1 {
		t.Errorf("a join off the partition attribute must stay generic (joins=%d cross=%d):\n%s",
			joins, crossShard, plan)
	}
}

// TestPointQueryPrunesToOneSubmit: the optimizer turns a punion over hash
// shards plus an equality predicate into a single-shard plan and reports
// the pruned shard.
func TestPointQueryPrunesToOneSubmit(t *testing.T) {
	o := New(scanCaps(), costmodel.New())
	home := int(algebra.HashValue(types.Int(7)) % 2)
	q := compilePart(t, `select x.total from x in orders where x.id = 7`)
	plan, report := o.Optimize(q, 1)
	subs := algebra.Submits(plan)
	if len(subs) != 1 {
		t.Fatalf("point query plan has %d submits, want 1:\n%s", len(subs), plan)
	}
	if want := fmt.Sprintf("r%d", home); subs[0].Repo != want {
		t.Errorf("plan reads %s, want the hash slot %s", subs[0].Repo, want)
	}
	other := fmt.Sprintf("orders@r%d", 1-home)
	if len(report.Pruned) != 1 || report.Pruned[0] != other {
		t.Errorf("Pruned = %v, want [%s]", report.Pruned, other)
	}
	if !strings.Contains(report.String(), "pruned shards: "+other) {
		t.Errorf("report should print pruned shards:\n%s", report)
	}
}

// TestPartitionWiseCandidateWinsOnCost: both variants are enumerated, and
// the cost model's output-tuple charge makes the per-shard join cheaper.
func TestPartitionWiseCandidateWinsOnCost(t *testing.T) {
	o := New(scanCaps(), costmodel.New())
	q := compilePart(t, `select struct(a: x.total, b: y.ref) from x in orders, y in invoices where x.id = y.id`)
	_, report := o.Optimize(q, 1)
	var generic, partitionWise *Candidate
	for i := range report.Candidates {
		c := &report.Candidates[i]
		switch joins, crossShard := joinShape(c.Plan); {
		case joins == 2 && crossShard == 0:
			partitionWise = c
		case joins == 1 && crossShard == 1:
			generic = c
		}
	}
	if partitionWise == nil || generic == nil {
		t.Fatalf("both join shapes should be enumerated:\n%s", report)
	}
	if partitionWise.Cost.Total >= generic.Cost.Total {
		t.Errorf("partition-wise cost %.4f should undercut generic %.4f",
			partitionWise.Cost.Total, generic.Cost.Total)
	}
}
